"""The cluster metrics plane: typed registry, order-independent
snapshot merging, the ``metrics_reduce`` collective, the background
sampler, and the straggler watchdog.

The load-bearing property is *bit-identical aggregation*: the merge
operates on raw integer histogram/counter state (associative and
commutative), with derived floats computed only at finalization — so a
tree reduction over any bracketing equals offline folding of the
per-rank snapshots, byte for byte.
"""

from __future__ import annotations

import functools
import time

from hypothesis import given, settings, strategies as st

import repro
from repro.core.world import current
from repro.gasnet.am import am_handler
from repro.gasnet.stats import CommStats, aggregate
from repro.telemetry import (
    Counter, Gauge, LogHistogram, MetricsRegistry, finalize_snapshot,
    merge_snapshots, rank_snapshot,
)
from tests.conftest import run_spmd


# ----------------------------------------------------------- registry

def test_counter_and_gauge_basics():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = Gauge("g")
    for v in (3, -1, 7):
        g.set(v)
    assert g.value == 7
    assert g.state() == {"last": 7, "min": -1, "max": 7, "sum": 9, "n": 3}


def test_registry_interns_by_name():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    reg.counter("x").inc(2)
    reg.gauge("y").set(5)
    snap = reg.snapshot()
    assert snap["counters"]["x"] == 2
    assert snap["gauges"]["y"]["last"] == 5


# ---------------------------------------- histogram merge (hypothesis)

_samples = st.lists(st.integers(min_value=0, max_value=1 << 40),
                    min_size=0, max_size=200)


@settings(max_examples=60, deadline=None)
@given(_samples, _samples)
def test_merge_then_quantile_equals_concat_then_quantile(xs, ys):
    """``a.merge(b)`` must be indistinguishable from having recorded
    both sample sets into one histogram — same buckets, same count/sum/
    extrema, and therefore the *same* interpolated quantiles."""
    a, b, both = (LogHistogram("t") for _ in range(3))
    for v in xs:
        a.record(v)
        both.record(v)
    for v in ys:
        b.record(v)
        both.record(v)
    a.merge(b)
    assert list(a.buckets) == list(both.buckets)
    assert a.count == both.count
    assert a.total == both.total
    assert a.min_value == both.min_value
    assert a.max_value == both.max_value
    for q in (50, 90, 99):
        assert a.percentile(q) == both.percentile(q)


@settings(max_examples=40, deadline=None)
@given(_samples, _samples, _samples)
def test_snapshot_merge_is_associative_and_commutative(xs, ys, zs):
    hists = []
    for i, vals in enumerate((xs, ys, zs)):
        h = LogHistogram("lat", unit="ns")
        for v in vals:
            h.record(v)
        hists.append(h)

    def snap(h):
        s = h.snapshot()
        return {"ranks": [0], "histograms": {"lat": {
            "unit": s["unit"], "count": s["count"], "sum": s["sum"],
            "min": s["min"], "max": s["max"], "buckets": s["buckets"],
        }}, "counters": {}, "gauges": {}}

    a, b, c = (snap(h) for h in hists)
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    flipped = merge_snapshots(c, merge_snapshots(b, a))
    for other in (right, flipped):
        assert left["histograms"] == other["histograms"]
        assert left["counters"] == other["counters"]


# --------------------------------------- CommStats.aggregate coverage

def test_aggregate_sums_wire_and_failover_counters():
    """The PR 6 wire counters and PR 7 failover counters must all fold
    through ``aggregate`` — a regression net for the metrics plane's
    counter source."""
    a, b = CommStats(), CommStats()
    a.record_wire(used_pickle=False, by_ref=True)
    a.record_wire(used_pickle=True, by_ref=False)
    b.record_wire(used_pickle=False, by_ref=False)
    a.record_kv_repl(3)
    b.record_kv_repl(2)
    a.record_kv_failover()
    b.record_kv_promotion()
    b.record_kv_migration()
    a.record_am_retransmit()
    b.record_dup_am()
    total = aggregate([a, b])
    assert total["wire_frames"] == 3
    assert total["wire_fixed"] == 2
    assert total["pickle_fallbacks"] == 1
    assert total["wire_byref"] == 1
    assert total["kv_repl_records"] == 5
    assert total["kv_failovers"] == 1
    assert total["kv_promotions"] == 1
    assert total["kv_migrations"] == 1
    assert total["am_retransmits"] == 1
    assert total["dup_ams"] == 1


# ------------------------------------------------ the reduce collective

def test_metrics_reduce_bit_identical_to_offline_merge():
    """``world.metrics_reduce()`` (a tree allreduce over raw snapshots)
    must equal folding the stashed per-rank snapshots offline — the
    same dict, bit for bit, on every rank."""
    stash: dict = {}

    def body():
        me = repro.myrank()
        sa_ctx = current()
        m = repro.DistHashMap()
        repro.barrier()
        for i in range(10 + me):          # rank-skewed load
            m.put(f"mr{me}:{i}", i)
            m.get(f"mr{me}:{i}")
        sa_ctx.telemetry.metrics.counter("my_ops").inc(10 + me)
        sa_ctx.telemetry.metrics.gauge("my_rank").set(me)
        repro.barrier()
        # Stash the raw per-rank snapshot BEFORE the reduce; the
        # histograms keep filling with AM traffic during the collective
        # itself, so the collective must reduce over frozen snapshots.
        stash[me] = rank_snapshot(sa_ctx)
        merged = repro.current_world().metrics_reduce(
            snapshot=stash[me])
        repro.barrier()
        return merged

    results = run_spmd(body, ranks=4, telemetry="full")
    offline = finalize_snapshot(functools.reduce(
        merge_snapshots, (stash[r] for r in range(4))))
    for r, merged in enumerate(results):
        assert merged == offline, f"rank {r} diverged from offline fold"
    assert results[0]["ranks"] == [0, 1, 2, 3]
    assert results[0]["counters"]["my_ops"] == sum(10 + r for r in range(4))
    g = results[0]["gauges"]["my_rank"]
    assert (g["min"], g["max"], g["n"]) == (0, 3, 4)
    # derived stats exist and are plain floats (JSON-ready)
    am_rtt = results[0]["histograms"].get("am_rtt")
    assert am_rtt and isinstance(am_rtt["p99"], float)
    assert am_rtt["count"] == sum(
        s["histograms"]["am_rtt"]["count"] for s in stash.values())


def test_metrics_reduce_default_snapshot_and_harness_shape():
    def body():
        repro.barrier()
        _ = repro.ranks()
        merged = repro.current_world().metrics_reduce()
        repro.barrier()
        assert set(merged) == {"ranks", "histograms", "counters",
                               "gauges"}
        assert merged["ranks"] == list(range(repro.ranks()))
        return True

    assert all(run_spmd(body, ranks=4, telemetry="full"))


# ------------------------------------------------- sampler + watchdog

def test_sampler_records_runtime_gauges():
    def body():
        me = repro.myrank()
        m = repro.DistHashMap()
        repro.barrier()
        deadline = time.monotonic() + 0.5
        i = 0
        while time.monotonic() < deadline:
            m.put(f"s{me}:{i}", i)
            i += 1
        repro.barrier()
        return True

    holder: dict = {}

    def wrapped():
        if repro.myrank() == 0:
            holder["world"] = repro.current_world()
            # live while the workload runs; stopped at spmd teardown
            assert repro.current_world()._sampler is not None
        return body()

    assert all(run_spmd(
        wrapped, ranks=2,
        telemetry={"mode": "full", "sample_period": 0.02},
    ))
    world = holder["world"]
    assert world._sampler is None  # teardown joined and cleared it
    tel0 = world.telemetry.rank(0)
    hists = tel0.histograms()
    assert hists["sampled_task_queue_depth"].count > 0
    assert hists["sampled_pending_replies"].count > 0
    assert hists["sampled_segment_bytes"].count > 0
    gauges = tel0.metrics.snapshot()["gauges"]
    assert "segment_bytes_in_use" in gauges
    assert "steal_rate_per_s" in gauges


def test_sampler_not_started_without_period():
    def body():
        repro.barrier()
        assert repro.current_world()._sampler is None
        return True

    assert all(run_spmd(body, ranks=2, telemetry="full"))


def test_watchdog_flags_slow_op_before_timeout():
    """An op exceeding the percentile-derived deadline must land in the
    flight ring as a ``slow_op`` event — carrying the client trace id —
    *while still outstanding* (the pre-timeout straggler warning)."""
    @am_handler("tar_pit")
    def _tar_pit(ctx, am):
        time.sleep(0.4)
        ctx.reply(am, args=("ok",))

    holder: dict = {}

    def body():
        me = repro.myrank()
        if me == 0:
            holder["world"] = repro.current_world()
        repro.barrier()
        if me == 0:
            from repro.telemetry import tracing
            tel = current().telemetry
            with tracing.span(tel, "slow_client_op"):
                fut = current().send_am(1, "tar_pit", args=(),
                                        expect_reply=True)
                (ok, *_), _ = fut.get(timeout=10.0)
                assert ok == "ok"
        repro.barrier()
        return True

    assert all(run_spmd(
        body, ranks=2,
        telemetry={"mode": "full", "watchdog_period": 0.02,
                   "slow_op_min_s": 0.05},
    ))
    world = holder["world"]
    slow = [ev for rt in world.telemetry.ranks
            for ev in rt.flight.snapshot() if ev.kind == "slow_op"]
    assert slow, "the watchdog should flag the tar-pit op"
    assert any("tar_pit" in ev.detail for ev in slow)
    assert any(ev.trace_id for ev in slow), \
        "slow_op events should carry the client op's trace id"
    counters = world.telemetry.rank(0).metrics.snapshot()["counters"]
    assert counters.get("slow_ops_flagged", 0) >= 1
