"""Cross-rank causal tracing: wire propagation, handler restoration,
Perfetto flow events, and the retransmit linkage.

The contract under test is the tentpole of the tracing plane: a client
op (``kv_put`` etc.) opens a root span, every AM it issues carries the
(trace_id, span_id) pair in the wire frame's 16-byte trailer, the
target rank's handler dispatch rebinds the context, and everything the
handler does — replication hops, replies, retransmits — lands in the
*same* trace.  Untraced messages must cost zero wire bytes.
"""

from __future__ import annotations

import re

import repro
from repro.containers import DistHashMap
from repro.gasnet import ChaosConduit
from repro.gasnet.am import ActiveMessage, make_reply
from repro.gasnet.wire.frame import (
    F_HAS_TRACE, HEADER, TRACE_TRAILER, encode_am,
)
from repro.telemetry import to_perfetto, tracing
from tests.conftest import run_spmd


RELIABILITY = {"seed": 0, "peer_timeout": 1.0, "heartbeat_period": 0.05}


# ------------------------------------------------------------- wire layer

def test_untraced_frame_has_no_trailer():
    am = ActiveMessage(handler="noop", src_rank=0, args=(1, 2))
    f = encode_am(am)
    flags = HEADER.unpack_from(f.ctrl, 0)[1]
    assert not flags & F_HAS_TRACE
    assert f.thaw().trace_id == 0


def test_traced_frame_roundtrips_ids_in_16_extra_bytes():
    plain = ActiveMessage(handler="noop", src_rank=0, args=(1, 2))
    traced = ActiveMessage(handler="noop", src_rank=0, args=(1, 2),
                           trace_id=0xDEAD_BEEF_01, span_id=0x42)
    fp, ft = encode_am(plain), encode_am(traced)
    # the trailer is the whole cost: header layout is unchanged
    assert len(ft.ctrl) == len(fp.ctrl) + TRACE_TRAILER.size
    out = ft.thaw()
    assert out.trace_id == 0xDEAD_BEEF_01
    assert out.span_id == 0x42


def test_trace_survives_reliability_envelope():
    """The reliability layer wraps data AMs in a ``__rel_data__``
    envelope; the inner frame is spliced whole, so the trace trailer
    must survive the nesting (and therefore every retransmit)."""
    inner = ActiveMessage(handler="noop", src_rank=0, args=("x",),
                          trace_id=77, span_id=88)
    env = ActiveMessage(handler="__rel_data__", src_rank=0,
                        args=(), payload=inner, aux=5)
    out = encode_am(env).thaw()
    assert out.payload.trace_id == 77
    assert out.payload.span_id == 88


def test_make_reply_inherits_trace_context():
    req = ActiveMessage(handler="h", src_rank=0, token=9,
                        trace_id=123, span_id=456)
    rep = make_reply(req, 1, args=("ok",))
    assert rep.trace_id == 123
    assert rep.span_id == 456


# -------------------------------------------------- thread-local context

def test_tracing_context_binding_is_scoped():
    assert tracing.current_ids() == (0, 0)
    with tracing.bound(10, 20):
        assert tracing.current_ids() == (10, 20)
        with tracing.bound(30, 40):
            assert tracing.current_ids() == (30, 40)
        assert tracing.current_ids() == (10, 20)
    assert tracing.current_ids() == (0, 0)


def test_span_noop_without_telemetry():
    with tracing.span(None, "anything"):
        assert tracing.current_ids() == (0, 0)


# -------------------------------------------- cross-rank causal chains

def _traced_kv_run(ranks=4, conduit=None, reliability=None, puts=8):
    """Every rank does remote kv puts/gets under full telemetry;
    returns the (still-live) world for span/flow inspection."""
    holder: dict = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        if me == 0:
            holder["world"] = repro.current_world()
        m = DistHashMap(replicas=1 if reliability else 0)
        repro.barrier()
        for i in range(puts):
            m.put(f"t{me}:{i}", (me, i))   # keys hash across all shards
        repro.barrier()
        for i in range(puts):
            assert m.get(f"t{(me + 1) % n}:{i}") == ((me + 1) % n, i)
        repro.barrier()
        return True

    kwargs = {}
    if conduit is not None:
        kwargs["conduit"] = conduit
    if reliability is not None:
        kwargs["reliability"] = reliability
    assert all(run_spmd(body, ranks=ranks, telemetry="full", **kwargs))
    return holder["world"]


def test_kv_op_spans_one_trace_across_ranks():
    world = _traced_kv_run()
    spans = world.telemetry.all_spans()
    roots = [s for s in spans if s.name == "kv_put" and s.trace_id]
    assert roots, "kv_put client ops should open traced root spans"
    # At least one root's trace reaches a handler span on ANOTHER rank:
    # the 16-byte trailer did its job and dispatch rebound the context.
    linked = 0
    by_trace: dict[int, list] = {}
    for s in spans:
        if s.trace_id:
            by_trace.setdefault(s.trace_id, []).append(s)
    for root in roots:
        chain = by_trace[root.trace_id]
        handlers = [s for s in chain if s.name == "am:kv_put"]
        if any(s.rank != root.rank for s in handlers):
            linked += 1
            # the handler span is parented on the client's root span
            assert any(s.parent_id == root.span_id for s in handlers)
    assert linked, "no kv_put trace crossed a rank boundary"


def test_replication_hop_joins_client_trace():
    world = _traced_kv_run(reliability=RELIABILITY,
                           conduit=ChaosConduit(seed=11))
    spans = world.telemetry.all_spans()
    by_trace: dict[int, set] = {}
    for s in spans:
        if s.trace_id:
            by_trace.setdefault(s.trace_id, set()).add(s.name)
    chains = [names for names in by_trace.values() if "kv_put" in names]
    assert any("am:kv_repl" in names for names in chains), \
        "replication hop should inherit the client op's trace id"


def test_perfetto_emits_cross_rank_flows_for_kv_ops():
    world = _traced_kv_run()
    data = to_perfetto(telemetry=world.telemetry)
    evs = data["traceEvents"]
    flows = [e for e in evs if e["ph"] in ("s", "t", "f")]
    assert flows, "traced run should emit flow events"
    for e in flows:
        assert e["cat"] == "trace"
    pids_by_flow: dict[int, set] = {}
    names_by_flow: dict[int, str] = {}
    for e in flows:
        pids_by_flow.setdefault(e["id"], set()).add(e["pid"])
        names_by_flow[e["id"]] = e["name"]
    cross = [fid for fid, pids in pids_by_flow.items() if len(pids) >= 2]
    assert cross, "expected at least one flow spanning two rank tracks"
    assert any(names_by_flow[fid].startswith("kv_")
               for fid in cross), "cross-rank flows should be kv ops"
    # every flow sequence is terminated ("s" ... "f" with bp=e)
    by_id: dict[int, list] = {}
    for e in flows:
        by_id.setdefault(e["id"], []).append(e)
    for fid, seq in by_id.items():
        phases = [e["ph"] for e in seq]
        assert phases.count("s") == 1 and phases.count("f") == 1, fid
        assert all(e["bp"] == "e" for e in seq if e["ph"] == "f")


def test_retransmit_joins_originating_trace():
    """Under a lossy conduit the reliability layer's retransmits must be
    attributed to the client op whose data frame they carry — both in
    the flight ring and (full mode) as spans in the same trace."""
    world = _traced_kv_run(
        conduit=ChaosConduit(seed=3, am_drop_rate=0.25),
        reliability=dict(RELIABILITY, seed=3), puts=16,
    )
    spans = world.telemetry.all_spans()
    client_traces = {s.trace_id for s in spans
                     if s.name.startswith("kv_") and s.trace_id}
    retrans = [s for s in spans if s.name.startswith("retransmit:")]
    assert retrans, "0.25 drop rate must force retransmits (seeded)"
    assert any(s.trace_id in client_traces for s in retrans), \
        "retransmit spans should join the originating client trace"
    flights = [ev for rt in world.telemetry.ranks
               for ev in rt.flight.snapshot()
               if ev.kind == "retransmit_traced"]
    assert any(ev.trace_id in client_traces for ev in flights)


def test_trace_ids_are_rank_salted_and_unique():
    """Ids are rank-salted counters, not clocks/randomness: the minting
    rank is recoverable from the high bits and no two spans collide."""
    world = _traced_kv_run(ranks=4, puts=4)
    spans = [s for s in world.telemetry.all_spans() if s.span_id]
    assert spans
    ids = [s.span_id for s in spans]
    assert len(ids) == len(set(ids)), "span ids must be globally unique"
    for s in spans:
        assert 1 <= (s.span_id >> 40) <= 4  # salt = minting rank + 1
    for s in spans:
        if s.name == "kv_put" and s.trace_id:
            assert (s.trace_id >> 40) == s.rank + 1


# ------------------------------------------------- chaos flight bridge

def test_chaos_faults_appear_in_flight_dump():
    """Injected faults bridge into the merged flight dump as inline
    ``chaos_*`` instants, time-ordered with the rank events."""
    holder: dict = {}

    def body():
        me = repro.myrank()
        if me == 0:
            holder["world"] = repro.current_world()
        m = DistHashMap()
        repro.barrier()
        for i in range(24):
            m.put(f"c{me}:{i}", i)
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=5, am_drop_rate=0.2)
    assert all(run_spmd(body, ranks=2, conduit=conduit,
                        reliability={"seed": 5, "peer_timeout": 1.0,
                                     "heartbeat_period": 0.05},
                        telemetry="flight"))
    assert conduit.fault_log, "seeded 0.2 drop rate must inject faults"
    events = conduit.fault_events()
    assert len(events) == len(conduit.fault_log)
    text = holder["world"].dump_flight_recorder(header="test")
    assert "chaos_drop" in text
    # bridged instants share the merged, time-ordered timeline
    times = [float(m.group(1)) for m in
             re.finditer(r"^\[\s*(-?[0-9.]+) ms\]", text, re.M)]
    assert times == sorted(times)
    assert len(times) > len(events)  # interleaved with rank events
