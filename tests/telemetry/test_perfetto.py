"""Chrome/Perfetto trace_event export tests."""

import itertools
import json

import numpy as np

import repro
from repro.gasnet.trace import Trace
from repro.telemetry import to_perfetto, write_perfetto
from tests.conftest import run_spmd


def _traced_run(ranks=4):
    """A small traced + telemetered workload; returns (trace, world)."""
    holder = {}

    def body():
        me = repro.myrank()
        if me == 0:
            trace = Trace(repro.current_world())
            trace.__enter__()
            holder["trace"] = trace
            holder["world"] = repro.current_world()
        repro.barrier()
        sa = repro.SharedArray(np.int64, size=2 * repro.ranks(), block=2)
        repro.barrier()
        with repro.finish():
            repro.async_((me + 1) % repro.ranks())(abs, -me)
        sa[(2 * me + 2) % len(sa)] = me  # one remote put per rank
        repro.barrier()
        if me == 0:
            holder["trace"].__exit__(None, None, None)
        return True

    assert all(run_spmd(body, ranks=ranks, telemetry="full"))
    return holder["trace"], holder["world"]


def test_export_is_valid_trace_event_json(tmp_path):
    trace, world = _traced_run()
    path = tmp_path / "run.perfetto.json"
    write_perfetto(str(path), trace=trace, telemetry=world.telemetry)
    data = json.loads(path.read_text())  # round-trips as strict JSON
    evs = data["traceEvents"]
    assert data["displayTimeUnit"] == "ms"
    assert evs, "no events exported"
    phases = {e["ph"] for e in evs}
    # X/i/M plus the flow-event triplet (s/t/f) linking causal traces
    assert phases <= {"X", "i", "M", "s", "t", "f"}
    for e in evs:
        assert isinstance(e["pid"], int)
        assert isinstance(e["tid"], int)
        if e["ph"] != "M":
            assert e["ts"] >= 0
    for e in evs:
        if e["ph"] in ("s", "t", "f"):
            assert "id" in e and e["cat"] == "trace"


def test_ranks_are_processes_with_names():
    trace, world = _traced_run()
    data = to_perfetto(trace=trace, telemetry=world.telemetry)
    evs = data["traceEvents"]
    pids = {e["pid"] for e in evs if e["ph"] != "M"}
    assert pids <= set(range(world.n_ranks))
    names = {e["pid"]: e["args"]["name"] for e in evs
             if e["ph"] == "M" and e["name"] == "process_name"}
    for pid in pids:
        assert names[pid] == f"rank {pid}"


def test_spans_are_complete_events_and_nest():
    trace, world = _traced_run()
    data = to_perfetto(trace=trace, telemetry=world.telemetry)
    xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert xs, "expected finish/task spans from the workload"
    assert any(e["name"] == "finish" for e in xs)
    for e in xs:
        assert e["dur"] >= 0
    # Well-formed nesting per (pid, tid): spans overlap only by
    # containment (ties broken parent-first by the exporter's ordering).
    key = lambda e: (e["pid"], e["tid"])
    for _, group in itertools.groupby(sorted(xs, key=key), key=key):
        stack = []  # end timestamps of open spans
        for e in sorted(group, key=lambda e: (e["ts"], -e["dur"])):
            while stack and e["ts"] >= stack[-1]:
                stack.pop()
            if stack:  # strictly inside the enclosing span
                assert e["ts"] + e["dur"] <= stack[-1] + 1e-6
            stack.append(e["ts"] + e["dur"])


def test_conduit_ops_are_instants_on_comm_track():
    trace, world = _traced_run()
    data = to_perfetto(trace=trace, telemetry=world.telemetry)
    instants = [e for e in data["traceEvents"] if e["ph"] == "i"]
    assert instants
    puts = [e for e in instants if e["name"] == "put"]
    assert puts, "each rank's remote put should be in the trace"
    for e in instants:
        assert e["tid"] == 0          # the reserved comm track
        assert e["s"] == "t"
        assert "nbytes" in e["args"]


def test_trace_only_and_telemetry_only_exports():
    trace, world = _traced_run()
    only_trace = to_perfetto(trace=trace)
    assert any(e["ph"] == "i" for e in only_trace["traceEvents"])
    assert not any(e["ph"] == "X" for e in only_trace["traceEvents"])
    only_tel = to_perfetto(telemetry=world.telemetry)
    assert any(e["ph"] == "X" for e in only_tel["traceEvents"])
    assert not any(e["ph"] == "i" for e in only_tel["traceEvents"])
    empty = to_perfetto()
    assert empty["traceEvents"] == []
