"""Remote function invocation: async_, futures, teams, errors."""

import numpy as np
import pytest

import repro
from repro.errors import SerializationError
from tests.conftest import run_spmd


def _square(x):
    return x * x


def _whoami():
    return repro.myrank()


def test_paper_example_lambda_on_remote_rank():
    """async(2)([](int n){...}, 5) — the paper's §III-G example."""
    def body():
        if repro.myrank() == 0:
            f = repro.async_(2)(lambda n: n * 10, 5)
            assert f.get() == 50
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_task_executes_on_target_rank():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        f = repro.async_((me + 1) % n)(_whoami)
        got = f.get()
        assert got == (me + 1) % n
        repro.barrier()
        return got

    run_spmd(body, ranks=4)


def test_module_level_functions_are_pickled():
    def body():
        if repro.myrank() == 0:
            assert repro.async_(1)(_square, 7).get() == 49
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_self_async_is_deferred_not_inline():
    """A local async goes through the task queue (UPC++ semantics), so
    it has NOT run before progress is made."""
    def body():
        if repro.myrank() == 0:
            seen = []
            # a lambda ships by reference, so the closure list is shared
            repro.async_(0)(lambda: seen.append(1))
            assert seen == []          # not executed inline
            repro.async_wait()
            assert seen == [1]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_kwargs_supported():
    def body():
        if repro.myrank() == 0:
            f = repro.async_(1)(divmod, 17, 5)
            assert f.get() == (3, 2)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_exception_raises_at_future_get():
    def body():
        if repro.myrank() == 0:
            f = repro.async_(1)(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                f.get()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_unserializable_arguments_rejected_eagerly():
    def body():
        if repro.myrank() == 0:
            with pytest.raises(SerializationError):
                repro.async_(1)(lambda x: x, lambda: None)  # lambda arg
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_numpy_args_and_results_roundtrip():
    def body():
        if repro.myrank() == 0:
            arr = np.arange(100.0)
            f = repro.async_(1)(np.sum, arr)
            assert f.get() == arr.sum()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_async_to_team_returns_multifuture():
    def body():
        if repro.myrank() == 0:
            team = repro.Team([1, 2, 3])
            mf = repro.async_(team)(_whoami)
            assert len(mf) == 3
            assert mf.get() == [1, 2, 3]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_async_target_validation():
    def body():
        with pytest.raises(ValueError):
            repro.async_(99)(int)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_tasks_can_issue_pgas_ops():
    """An async task body can itself use the PGAS API on its rank."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        if me == 0:
            def task():
                sa[repro.myrank()] = repro.myrank() + 100
                return repro.myrank()

            with repro.finish():
                repro.async_(1)(task)
                repro.async_(2)(task)
        repro.barrier()
        return (int(sa[1]), int(sa[2]))

    res = run_spmd(body, ranks=3)
    assert res[0] == (101, 102)


def test_future_done_and_wait():
    def body():
        if repro.myrank() == 0:
            f = repro.async_(1)(_square, 3)
            f.wait()
            assert f.done() and f.get() == 9
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_nested_asyncs():
    """A task can spawn further asyncs (no transitive-wait semantics —
    the paper's deliberate divergence from X10 finish)."""
    def body():
        me = repro.myrank()
        if me == 0:
            def outer():
                inner = repro.async_(2)(_square, 4)
                return inner.get() + 1

            f = repro.async_(1)(outer)
            assert f.get() == 17
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))
