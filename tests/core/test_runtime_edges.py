"""Runtime edge cases: options, partial progress, bigger worlds, and a
mixed-operation stress test."""

import numpy as np
import pytest

import repro
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_custom_segment_size():
    def body():
        seg = repro.current_world().ranks[repro.myrank()].segment
        assert seg.size == 1 << 20
        # allocations beyond the small segment fail cleanly
        with pytest.raises(repro.SegmentOutOfMemory):
            repro.allocate(repro.myrank(), 2 << 20, np.uint8)
        repro.barrier()
        return True

    assert all(repro.spmd(body, ranks=2, segment_size=1 << 20, timeout=30))


def test_advance_max_items_limits_batch():
    def body():
        me = repro.myrank()
        if me == 0:
            seen = []
            for i in range(5):
                repro.async_(0)(lambda i=i: seen.append(i))
            # each advance(max_items=...) batch is bounded: 5 AMs are in
            # the inbox; max_items=2 handles two AMs (enqueuing tasks)
            repro.advance(max_items=2)
            assert len(seen) <= 2
            repro.async_wait()
            assert sorted(seen) == [0, 1, 2, 3, 4]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_sixteen_rank_world():
    def body():
        me, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=n, block=1)
        repro.barrier()
        sa[(me + 1) % n] = me
        repro.barrier()
        assert sa[me] == (me - 1) % n
        total = repro.collectives.allreduce(me)
        assert total == n * (n - 1) // 2
        return True

    assert all(run_spmd(body, ranks=16, timeout=60))


def test_no_timeout_mode_still_completes():
    res = repro.spmd(
        lambda: repro.collectives.allreduce(1), ranks=2, timeout=None
    )
    assert res == [2, 2]


def test_return_values_can_be_arbitrary_objects():
    def body():
        return {"rank": repro.myrank(), "arr": np.arange(3)}

    res = run_spmd(body, ranks=2)
    assert res[1]["rank"] == 1
    assert np.array_equal(res[0]["arr"], np.arange(3))


def test_exceptions_in_multiple_ranks_report_one():
    def body():
        raise RuntimeError(f"rank {repro.myrank()} died")

    with pytest.raises(RuntimeError, match="rank \\d died"):
        run_spmd(body, ranks=3)


def test_mixed_operation_stress():
    """A randomized workload mixing every major API for many rounds —
    the chaos test that shakes out ordering bugs."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        rng = np.random.default_rng(1000 + me)
        sa = repro.SharedArray(np.int64, size=32, block=4)
        counter = repro.SharedVar(np.int64, init=0)
        lock = repro.GlobalLock()
        repro.barrier()
        my_asyncs = 0
        for round_ in range(15):
            op = rng.integers(0, 5)
            if op == 0:
                sa[int(rng.integers(0, 32))] = me * 100 + round_
            elif op == 1:
                _ = sa[int(rng.integers(0, 32))]
            elif op == 2:
                counter.atomic("add", 1)
            elif op == 3:
                with lock:
                    counter.atomic("add", 1)
            else:
                with repro.finish():
                    repro.async_(int(rng.integers(0, n)))(int, round_)
                my_asyncs += 1
            if round_ % 5 == 4:
                repro.barrier()
        repro.barrier()
        return int(counter.value)

    res = run_spmd(body, ranks=4, timeout=60)
    assert len(set(res)) == 1  # all ranks agree on the final counter


def test_distributed_transpose_via_alltoallv():
    """Block matrix transpose: the alltoall workhorse done distributed,
    checked against numpy."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        rows_per = 2
        cols = rows_per * n
        rng = np.random.default_rng(7)           # same matrix everywhere
        M = rng.integers(0, 100, size=(rows_per * n, cols))
        my_rows = M[me * rows_per:(me + 1) * rows_per, :]
        # send to rank j the block of my rows in its column range
        outgoing = [
            np.ascontiguousarray(
                my_rows[:, j * rows_per:(j + 1) * rows_per]
            )
            for j in range(n)
        ]
        incoming = repro.collectives.alltoallv(outgoing)
        # my transposed rows: stack received blocks along columns, then T
        mine_T = np.concatenate(incoming, axis=0).reshape(
            n, rows_per, rows_per
        )
        built = np.concatenate([blk.T for blk in mine_T], axis=1)
        expect = M.T[me * rows_per:(me + 1) * rows_per, :]
        assert np.array_equal(built, expect)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_collective_after_failure_does_not_hang():
    def body():
        me = repro.myrank()
        repro.barrier()
        if me == 0:
            raise ValueError("dies before second barrier")
        repro.barrier()

    with pytest.raises(ValueError):
        run_spmd(body, ranks=3, timeout=15)
