"""Memory consistency model (paper §III-F) litmus tests.

The model is relaxed: only operations *from the same thread to the same
location* are ordered; everything else requires explicit
synchronization.  These tests pin the guarantees the model does make —
and the synchronization recipes that restore order.
"""

import numpy as np

import repro
from tests.conftest import run_spmd


def test_same_thread_same_location_program_order():
    """x = 1; x = 2; read x  ->  must see 2 (even remotely)."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 1:
            sa[0] = 1   # element 0 lives on rank 0: remote puts
            sa[0] = 2
            assert sa[0] == 2
        repro.barrier()
        assert sa[0] == 2
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_read_your_writes_through_different_apis():
    """A write through a global pointer is visible to a subsequent read
    through the shared array (same thread, same location)."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        if me == 1:
            sa.gptr(0).put(7)
            assert sa[0] == 7
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_barrier_publishes_writes():
    """The classic producer/consumer: writes before a barrier are
    visible to every rank after it."""
    def body():
        me = repro.myrank()
        data = repro.SharedArray(np.int64, size=8, block=8)  # on rank 0
        repro.barrier()
        if me == 0:
            for i in range(8):
                data[i] = i * i
        repro.barrier()  # the synchronization edge
        assert [int(data[i]) for i in range(8)] == [i * i for i in range(8)]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_fence_orders_nonblocking_copies_before_flag():
    """message-passing litmus: payload via async_copy, flag after
    fence — the consumer polling the flag must see the payload."""
    def body():
        me = repro.myrank()
        payload = repro.SharedArray(np.int64, size=64, block=64)  # rank 0
        flag = repro.SharedVar(np.int64, init=0)
        repro.barrier()
        if me == 1:
            src = repro.allocate(1, 64, np.int64)
            src.put(np.arange(64))
            repro.async_copy(src, payload.gptr(0), 64)
            repro.fence()          # completes the copy ...
            flag.value = 1         # ... before the flag is raised
        if me == 2:
            ctx = repro.current_world().ranks[me]
            ctx.wait_until(lambda: flag.value == 1, what="flag")
            assert [int(payload[i]) for i in range(0, 64, 7)] == \
                [i for i in range(0, 64, 7)]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_event_signal_publishes_task_effects():
    """Effects of an async task are visible once its event has fired."""
    def body():
        me = repro.myrank()
        cell = repro.SharedArray(np.int64, size=1, block=1)
        repro.barrier()
        if me == 0:
            e = repro.Event()

            def produce():
                cell[0] = 99
                return None

            repro.async_(cell.where(0), signal=e)(produce)
            e.wait()
            assert cell[0] == 99
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_atomics_are_globally_serialized():
    """Concurrent atomic adds never lose updates (the counter litmus)."""
    def body():
        c = repro.SharedVar(np.int64, init=0)
        repro.barrier()
        for _ in range(200):
            c.atomic("add", 1)
        repro.barrier()
        return int(c.value)

    res = run_spmd(body, ranks=4)
    assert res == [800] * 4
