"""Listing 1 / Fig. 1: the task-dependency graph, executed for real.

The paper's example builds this graph with events::

    event e1, e2, e3;
    async(p1, &e1)(t1);
    async(p2, &e1)(t2);
    async_after(p3, &e1, &e2)(t3);
    async(p4, &e2)(t4);
    async_after(p5, &e2, &e3)(t5);
    async_after(p6, &e2, &e3)(t6);
    e3.wait();

Constraints (Fig. 1): t1 and t2 precede t3; t3 and t4 precede t5 and
t6; e3.wait() returns only after t5 and t6 complete.
"""

import threading
import time

import repro
from tests.conftest import run_spmd


def _run_dag(task_sleep=0.0):
    """Execute Listing 1 on rank 0, recording completion order."""
    order: list[str] = []
    lock = threading.Lock()

    def record(name):
        def cb(fut):
            with lock:
                order.append(name)
        return cb

    def task(name):
        if task_sleep:
            time.sleep(task_sleep)
        return name

    n = repro.ranks()
    p = [k % n for k in (1, 2, 3, 4, 5, 6)]
    e1, e2, e3 = repro.Event(), repro.Event(), repro.Event()
    repro.async_(p[0], signal=e1)(task, "t1").add_callback(record("t1"))
    repro.async_(p[1], signal=e1)(task, "t2").add_callback(record("t2"))
    repro.async_after(p[2], after=e1, signal=e2)(task, "t3") \
        .add_callback(record("t3"))
    repro.async_(p[3], signal=e2)(task, "t4").add_callback(record("t4"))
    repro.async_after(p[4], after=e2, signal=e3)(task, "t5") \
        .add_callback(record("t5"))
    repro.async_after(p[5], after=e2, signal=e3)(task, "t6") \
        .add_callback(record("t6"))
    e3.wait()
    return order, (e1, e2, e3)


def _check_constraints(order):
    pos = {name: i for i, name in enumerate(order)}
    assert set(pos) == {"t1", "t2", "t3", "t4", "t5", "t6"}
    assert pos["t1"] < pos["t3"] and pos["t2"] < pos["t3"]
    assert pos["t3"] < pos["t5"] and pos["t3"] < pos["t6"]
    assert pos["t4"] < pos["t5"] and pos["t4"] < pos["t6"]


def test_listing1_ordering_constraints():
    def body():
        if repro.myrank() == 0:
            order, events = _run_dag()
            _check_constraints(order)
            assert all(e.test() for e in events)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_listing1_with_slow_tasks():
    """Sleeping tasks shake out races between event firing and waits."""
    def body():
        if repro.myrank() == 0:
            order, _ = _run_dag(task_sleep=0.01)
            _check_constraints(order)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_listing1_repeatable():
    """The DAG can run repeatedly in one world with fresh events."""
    def body():
        if repro.myrank() == 0:
            for _ in range(5):
                order, _ = _run_dag()
                _check_constraints(order)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_listing1_on_two_ranks():
    """Place mapping k % n keeps the DAG valid on small worlds."""
    def body():
        if repro.myrank() == 0:
            order, _ = _run_dag()
            _check_constraints(order)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
