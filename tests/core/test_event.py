"""Events and event-driven task dependencies (paper §III-G)."""

import pytest

import repro
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_event_counts_registered_operations():
    def body():
        if repro.myrank() == 0:
            e = repro.Event()
            assert e.test()  # nothing registered: trivially fired
            repro.async_(1, signal=e)(int, 1)
            repro.async_(2, signal=e)(int, 2)
            e.wait()
            assert e.test() and e.pending() == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_async_after_fires_only_after_event():
    def body():
        if repro.myrank() == 0:
            import time

            e = repro.Event()
            order = []
            repro.async_(1, signal=e)(time.sleep, 0.02)
            repro.async_after(2, after=e)(int, 0).add_callback(
                lambda f: order.append("dependent")
            )
            assert order == []  # cannot have fired yet
            e.wait()
            repro.async_wait()
            while not order:
                repro.advance()
            assert order == ["dependent"]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_async_after_on_already_fired_event_launches_immediately():
    def body():
        if repro.myrank() == 0:
            e = repro.Event()  # never registered: counts as fired
            f = repro.async_after(1, after=e)(lambda: "ran")
            assert f.get() == "ran"
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_over_signal_rejected():
    def body():
        if repro.myrank() == 0:
            e = repro.Event()
            with pytest.raises(PgasError):
                e.signal()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_incref_validation():
    def body():
        if repro.myrank() == 0:
            e = repro.Event()
            with pytest.raises(ValueError):
                e.incref(-1)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_manual_event_usage():
    """Events as raw countdown latches (incref/signal by hand)."""
    def body():
        if repro.myrank() == 0:
            e = repro.Event()
            e.incref(3)
            assert not e.test() and e.pending() == 3
            e.signal()
            e.signal()
            assert not e.test()
            e.signal()
            assert e.test()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_event_chain_three_stages():
    def body():
        if repro.myrank() == 0:
            e1, e2 = repro.Event(), repro.Event()
            stages = []
            repro.async_(1, signal=e1)(lambda: stages.append)  # noqa: dummy
            repro.async_after(1, after=e1, signal=e2)(lambda: "b")
            f = repro.async_after(1, after=e2)(lambda: "c")
            assert f.get() == "c"
            assert e1.test() and e2.test()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
