"""The finish construct (paper §III-G RAII block)."""

import time

import pytest

import repro
from tests.conftest import run_spmd


def test_paper_example_two_tasks_complete_inside_finish():
    def body():
        me = repro.myrank()
        done = []
        if me == 0:
            with repro.finish():
                repro.async_(1)(time.sleep, 0.01)
                repro.async_(2)(time.sleep, 0.01)
                f1 = repro.async_(1)(lambda: done_marker(1))
                f2 = repro.async_(2)(lambda: done_marker(2))
            # RAII exit: both tasks must have completed.
            assert f1.done() and f2.done()
        repro.barrier()
        return True

    def done_marker(x):
        return x

    assert all(run_spmd(body, ranks=3))


def test_finish_counts_only_dynamic_scope():
    """Asyncs issued outside the block are not waited on."""
    def body():
        if repro.myrank() == 0:
            before = repro.async_(1)(lambda: time.sleep(0.05) or "slow")
            t0 = time.perf_counter()
            with repro.finish():
                pass  # nothing registered inside
            assert time.perf_counter() - t0 < 0.05
            assert before.get() == "slow"
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_nested_finish_scopes():
    def body():
        if repro.myrank() == 0:
            order = []
            with repro.finish():
                repro.async_(1)(int, 0).add_callback(
                    lambda f: order.append("outer")
                )
                with repro.finish():
                    repro.async_(2)(int, 1).add_callback(
                        lambda f: order.append("inner")
                    )
                assert "inner" in order  # inner scope drained first
            assert "outer" in order
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_finish_surfaces_remote_task_errors():
    def body():
        if repro.myrank() == 0:
            with pytest.raises(ZeroDivisionError):
                with repro.finish():
                    repro.async_(1)(lambda: 1 / 0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_finish_with_team_async():
    def body():
        if repro.myrank() == 0:
            with repro.finish():
                mf = repro.async_(repro.Team([1, 2]))(lambda: repro.myrank())
            assert mf.get() == [1, 2]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_finish_propagates_user_exception_without_hanging():
    def body():
        if repro.myrank() == 0:
            with pytest.raises(KeyError):
                with repro.finish():
                    repro.async_(1)(int, 0)
                    raise KeyError("user bug inside finish")
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_many_tasks_in_one_finish():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        if me == 0:
            futures = []
            with repro.finish():
                for i in range(40):
                    futures.append(repro.async_(i % n)(lambda x: x + 1, i))
            assert [f.get() for f in futures] == list(range(1, 41))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))
