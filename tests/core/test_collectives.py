"""Collective operations: correctness, by-value semantics, mismatch
detection, and team-scoped variants."""

import numpy as np
import pytest

import repro
from repro.core import collectives as coll
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_barrier_orders_all_ranks():
    """No rank exits the barrier before every rank has entered it."""
    import threading
    entered = []
    lock = threading.Lock()

    def body():
        with lock:
            entered.append(repro.myrank())
        repro.barrier()
        with lock:
            count = len(entered)
        assert count == repro.ranks()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_bcast_scalar_and_array(nranks):
    def body():
        me = repro.myrank()
        v = coll.bcast(123 if me == 0 else None, root=0)
        arr = coll.bcast(
            np.arange(5) if me == nranks - 1 else None, root=nranks - 1
        )
        return (v, arr.sum())

    assert run_spmd(body, ranks=nranks) == [(123, 10)] * nranks


def test_bcast_is_by_value():
    """Mutating the received buffer must not affect other ranks."""
    def body():
        me = repro.myrank()
        arr = coll.bcast(np.zeros(4) if me == 0 else None, root=0)
        arr += me  # private copy
        repro.barrier()
        arr2 = coll.allgather(arr.sum())
        return tuple(arr2)

    res = run_spmd(body, ranks=3)
    assert res[0] == (0.0, 4.0, 8.0)


def test_reduce_to_root_only():
    def body():
        me = repro.myrank()
        total = coll.reduce(me + 1, op="sum", root=1)
        return total

    res = run_spmd(body, ranks=4)
    assert res[1] == 10
    assert res[0] is None and res[2] is None and res[3] is None


@pytest.mark.parametrize("op,expected", [
    ("sum", 6), ("prod", 0), ("min", 0), ("max", 3),
    ("xor", 0 ^ 1 ^ 2 ^ 3), ("or", 3), ("and", 0),
])
def test_allreduce_named_ops(op, expected):
    res = run_spmd(lambda: coll.allreduce(repro.myrank(), op=op), ranks=4)
    assert res == [expected] * 4


def test_allreduce_matches_local_reduce_on_arrays():
    """Property: allreduce(v) == functools.reduce(op, all v)."""
    def body():
        me = repro.myrank()
        v = np.arange(4) * (me + 1)
        got = coll.allreduce(v, op="sum")
        contributions = coll.allgather(v)
        expect = sum(contributions[1:], contributions[0])
        return bool(np.array_equal(got, expect))

    assert all(run_spmd(body, ranks=4))


def test_allreduce_custom_callable():
    res = run_spmd(
        lambda: coll.allreduce(repro.myrank() + 1, op=lambda a, b: a * b),
        ranks=4,
    )
    assert res == [24] * 4


def test_unknown_reduction_rejected():
    def body():
        with pytest.raises(PgasError):
            coll.allreduce(1, op="frobnicate")
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_gather_and_allgather_rank_order():
    def body():
        me = repro.myrank()
        g = coll.gather(f"r{me}", root=0)
        ag = coll.allgather(me * 2)
        return (g, ag)

    res = run_spmd(body, ranks=3)
    assert res[0][0] == ["r0", "r1", "r2"]
    assert res[1][0] is None
    assert all(r[1] == [0, 2, 4] for r in res)


def test_gatherv_concatenates_variable_lengths():
    def body():
        me = repro.myrank()
        part = np.full(me + 1, me, dtype=np.int64)
        return coll.gatherv(part, root=0)

    res = run_spmd(body, ranks=3)
    assert np.array_equal(res[0], np.array([0, 1, 1, 2, 2, 2]))
    assert res[1] is None


def test_gatherv_rejects_2d():
    def body():
        with pytest.raises(PgasError):
            coll.gatherv(np.zeros((2, 2)))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_scatter():
    def body():
        me = repro.myrank()
        values = [10, 20, 30, 40] if me == 0 else None
        return coll.scatter(values, root=0)

    assert run_spmd(body, ranks=4) == [10, 20, 30, 40]


def test_scatter_validates_length():
    def body():
        me = repro.myrank()
        coll.scatter([1] if me == 0 else None, root=0)  # needs 2 values

    with pytest.raises(PgasError):
        run_spmd(body, ranks=2, timeout=10)


def test_alltoall_transpose_semantics():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        outgoing = [f"{me}->{dst}" for dst in range(n)]
        incoming = coll.alltoall(outgoing)
        return incoming

    res = run_spmd(body, ranks=3)
    for dst in range(3):
        assert res[dst] == [f"{src}->{dst}" for src in range(3)]


def test_alltoallv_arrays():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        outgoing = [np.full(src_len, me, dtype=np.int32)
                    for src_len in range(1, n + 1)]
        incoming = coll.alltoallv(outgoing)
        return [a.tolist() for a in incoming]

    res = run_spmd(body, ranks=3)
    # rank 1 receives arrays of length 2 from every source
    assert res[1] == [[0, 0], [1, 1], [2, 2]]


def test_alltoall_wrong_length_rejected():
    def body():
        with pytest.raises(PgasError):
            coll.alltoall([1, 2])  # needs exactly `ranks` entries
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_collective_mismatch_detected_not_deadlocked():
    def body():
        if repro.myrank() == 0:
            coll.bcast(1, root=0)
        else:
            coll.allreduce(1)

    with pytest.raises(PgasError):
        run_spmd(body, ranks=2, timeout=10)


def test_team_barrier_and_bcast():
    def body():
        me = repro.myrank()
        evens = repro.Team([0, 2])
        odds = repro.Team([1, 3])
        team = evens if me % 2 == 0 else odds
        v = team.bcast(me * 100, root=0)  # team-index 0 is the root
        team.barrier()
        return v

    res = run_spmd(body, ranks=4)
    assert res == [0, 100, 0, 100]


def test_team_split():
    def body():
        me = repro.myrank()
        world = repro.Team.world()
        sub = world.split(color=me % 2, key=-me)
        return tuple(sub.members)

    res = run_spmd(body, ranks=4)
    assert res[0] == (2, 0)  # key=-rank reverses the order
    assert res[1] == (3, 1)
    assert res[2] == (2, 0)


def test_scan_inclusive():
    def body():
        me = repro.myrank()
        return coll.scan(me + 1)

    # values 1,2,3,4 -> prefix sums 1,3,6,10
    assert run_spmd(body, ranks=4) == [1, 3, 6, 10]


def test_exscan_exclusive():
    def body():
        me = repro.myrank()
        return coll.exscan(me + 1)

    assert run_spmd(body, ranks=4) == [0, 1, 3, 6]


def test_exscan_custom_initial_and_op():
    def body():
        me = repro.myrank()
        return coll.exscan(me + 2, op="prod", initial=1)

    # values 2,3,4 -> exclusive products 1, 2, 6
    assert run_spmd(body, ranks=3) == [1, 2, 6]


def test_scan_arrays():
    def body():
        me = repro.myrank()
        v = np.full(3, me + 1)
        out = coll.scan(v)
        expect = np.full(3, sum(range(1, me + 2)))
        return bool(np.array_equal(out, expect))

    assert all(run_spmd(body, ranks=3))


def test_scan_offsets_idiom():
    """The partitioning idiom: exscan of local counts = landing offset."""
    def body():
        me = repro.myrank()
        count = (me + 1) * 5
        offset = coll.exscan(count)
        total = coll.allreduce(count)
        offsets = coll.allgather(offset)
        assert offsets == sorted(offsets)
        assert offsets[0] == 0
        assert offsets[-1] + (repro.ranks()) * 5 == total
        return True

    assert all(run_spmd(body, ranks=4))


# -- team-scoped collectives ------------------------------------------------

def test_subset_team_collectives_ignore_outsiders():
    """A strict-subset team runs its full collective surface while the
    left-out rank does unrelated communication — no cross-talk."""
    def body():
        me = repro.myrank()
        sub = repro.Team([0, 1, 3])   # rank 2 excluded
        if me == 2:
            # outsider: unrelated traffic while the team collects
            with repro.finish():
                repro.async_(0)(lambda: None)
            return "outsider"
        idx = sub.index_of(me)
        assert sub.allgather(idx) == [0, 1, 2]
        assert sub.allreduce(idx + 1) == 6
        r = sub.reduce(idx, op="max", root=1)
        assert r == (2 if idx == 1 else None)
        assert sub.bcast("hi" if idx == 0 else None, root=0) == "hi"
        sub.barrier()
        return "member"

    res = run_spmd(body, ranks=4)
    assert res == ["member", "member", "outsider", "member"]


def test_overlapping_teams_interleave_safely():
    """A rank in two teams interleaves collectives on both; each team
    keeps its own sequence stream so nothing cross-matches."""
    def body():
        me = repro.myrank()
        left = repro.Team([0, 1, 2])
        right = repro.Team([2, 3])     # rank 2 is in both
        out = {}
        if me in left:
            out["left"] = left.allgather(f"L{me}")
        if me in right:
            out["right"] = right.allreduce(me)
        if me in left:
            left.barrier()
        if me in right:
            out["right2"] = right.bcast(me * 10 if me == 2 else None,
                                        root=0)
        return out

    res = run_spmd(body, ranks=4)
    assert res[2]["left"] == ["L0", "L1", "L2"]
    assert res[2]["right"] == res[3]["right"] == 5
    assert res[2]["right2"] == res[3]["right2"] == 20


def test_team_reduce_root_is_team_index():
    def body():
        me = repro.myrank()
        team = repro.Team([3, 1])      # team index 0 is world rank 3
        if me in team:
            got = team.reduce(me, op="sum", root=0)
            return got if me == 3 else ("off-root", got)
        return None

    res = run_spmd(body, ranks=4)
    assert res[3] == 4
    assert res[1] == ("off-root", None)


# -- value-copy semantics ---------------------------------------------------

def test_copy_value_numpy_scalar_fast_path():
    """NumPy scalars are immutable: copy_value must return them as-is
    (no pickle round-trip), preserving dtype."""
    from repro.core.coll_engine import copy_value

    s = np.float32(1.5)
    assert copy_value(s) is s
    i = np.uint64(1 << 60)
    assert copy_value(i) is i
    # ndarrays still get defensively copied
    a = np.arange(4)
    c = copy_value(a)
    assert c is not a and np.array_equal(c, a)
    # arbitrary objects round-trip by value
    d = {"k": [1, 2]}
    c2 = copy_value(d)
    assert c2 == d and c2 is not d


def test_bcast_numpy_scalar_keeps_dtype():
    def body():
        v = np.float32(2.5) if repro.myrank() == 0 else None
        got = coll.bcast(v, root=0)
        return type(got).__name__, float(got)

    res = run_spmd(body, ranks=3)
    assert all(r == ("float32", 2.5) for r in res)
