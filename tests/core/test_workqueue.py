"""Distributed work-stealing queue (the §V-D future-work extension)."""

import numpy as np
import pytest

import repro
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_items_processed_exactly_once_balanced():
    def body():
        me, n = repro.myrank(), repro.ranks()
        wq = repro.DistWorkQueue()
        wq.add_local(range(me * 10, me * 10 + 10))
        repro.barrier()
        got = []
        while (item := wq.get()) is not None:
            got.append(item)
            wq.task_done()
        all_got = repro.collectives.allgather(got)
        flat = sorted(x for sub in all_got for x in sub)
        assert flat == sorted(
            i for r in range(n) for i in range(r * 10, r * 10 + 10)
        ), "items lost or duplicated"
        return len(got)

    counts = run_spmd(body, ranks=4)
    assert sum(counts) == 40


def test_stealing_redistributes_skewed_load():
    """All items seeded on rank 0: other ranks must steal to finish.

    Items carry real work (1 ms) — with zero-cost items the owner can
    legitimately drain its queue before any thief's round trip lands.
    """
    import time

    def body():
        me, n = repro.myrank(), repro.ranks()
        wq = repro.DistWorkQueue()
        if me == 0:
            wq.add_local(range(60))
        repro.barrier()
        done = 0
        while wq.get() is not None:
            time.sleep(0.001)
            wq.task_done()
            done += 1
        total = repro.collectives.allreduce(done)
        assert total == 60
        steals = repro.collectives.allreduce(wq.steals_successful)
        assert steals > 0, "no stealing happened under full skew"
        # and the owner did not process everything alone
        assert repro.collectives.allreduce(done, op="max") < 60
        return done

    counts = run_spmd(body, ranks=4)
    assert sum(counts) == 60


def test_termination_on_empty_pool():
    def body():
        wq = repro.DistWorkQueue()
        repro.barrier()
        assert wq.get() is None
        assert wq.outstanding() == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_termination_waits_for_completion_not_claim():
    """outstanding() counts completions: a claimed-but-unfinished item
    keeps the pool alive."""
    def body():
        me = repro.myrank()
        wq = repro.DistWorkQueue()
        if me == 0:
            wq.add_local([1])
        repro.barrier()
        if me == 0:
            item = wq.get()
            assert item == 1
            assert wq.outstanding() == 1   # claimed, not done
            wq.task_done()
            assert wq.outstanding() == 0
        repro.barrier()
        assert wq.get() is None
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_steal_half_policy():
    def body():
        me = repro.myrank()
        wq = repro.DistWorkQueue()
        if me == 0:
            wq.add_local(range(20))
        repro.barrier()
        if me == 1:
            assert wq._steal_once() or wq._steal_once()
            # steal-half: about half the victim's queue arrived
            assert 5 <= wq.local_size() <= 15
        repro.barrier()
        # drain so the finalize barrier isn't fighting the counter
        while wq.get() is not None:
            wq.task_done()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_single_rank_queue():
    def body():
        wq = repro.DistWorkQueue()
        wq.add_local("abc")
        out = []
        while (x := wq.get()) is not None:
            out.append(x)
            wq.task_done()
        assert out == ["a", "b", "c"]
        return True

    assert all(run_spmd(body, ranks=1))


def test_task_done_validation():
    def body():
        wq = repro.DistWorkQueue()
        with pytest.raises(PgasError):
            wq.task_done(0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_generates_more_work_mid_flight():
    """Workers may add new items while consuming (nested parallelism)."""
    def body():
        me = repro.myrank()
        wq = repro.DistWorkQueue()
        if me == 0:
            wq.add_local([("split", 16)])
        repro.barrier()
        leaves = 0
        while (item := wq.get()) is not None:
            kind, size = item
            if kind == "split" and size > 1:
                wq.add_local([("split", size // 2), ("split", size // 2)])
            else:
                leaves += 1
            wq.task_done()
        total_leaves = repro.collectives.allreduce(leaves)
        assert total_leaves == 16
        return True

    assert all(run_spmd(body, ranks=4, timeout=60))


def test_queues_are_independent():
    def body():
        me = repro.myrank()
        a = repro.DistWorkQueue()
        b = repro.DistWorkQueue()
        a.add_local([1])
        b.add_local([2])
        repro.barrier()
        xa = a.get()
        xb = b.get()
        assert {xa, xb} <= {1, 2, None}
        if xa is not None:
            a.task_done()
        if xb is not None:
            b.task_done()
        while a.get() is not None:
            a.task_done()
        while b.get() is not None:
            b.task_done()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
