"""shared_array<T, BS>: UPC block-cyclic layout and access semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.shared_array import (
    global_index_of,
    local_offset_of,
    owner_of,
    slab_elements,
)
from repro.errors import PgasError
from tests.conftest import run_spmd


# -- pure layout math ---------------------------------------------------

def test_cyclic_layout_block_1():
    # BS=1: element i on thread i % THREADS (UPC default)
    for i in range(20):
        assert owner_of(i, 1, 4) == i % 4
        assert local_offset_of(i, 1, 4) == i // 4


def test_blocked_layout():
    # BS=3, 2 threads: [0,1,2]->t0, [3,4,5]->t1, [6,7,8]->t0 ...
    owners = [owner_of(i, 3, 2) for i in range(12)]
    assert owners == [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]
    assert local_offset_of(6, 3, 2) == 3
    assert local_offset_of(7, 3, 2) == 4


@settings(max_examples=200, deadline=None)
@given(
    i=st.integers(0, 10_000),
    block=st.integers(1, 17),
    nranks=st.integers(1, 9),
)
def test_layout_roundtrip(i, block, nranks):
    """Property: (owner, local_offset) <-> global index is a bijection."""
    r = owner_of(i, block, nranks)
    off = local_offset_of(i, block, nranks)
    assert 0 <= r < nranks
    assert global_index_of(r, off, block, nranks) == i


@settings(max_examples=100, deadline=None)
@given(
    size=st.integers(1, 500),
    block=st.integers(1, 16),
    nranks=st.integers(1, 8),
)
def test_slab_covers_all_elements(size, block, nranks):
    """Property: every element's local offset fits in the uniform slab."""
    slab = slab_elements(size, block, nranks)
    for i in range(size):
        assert local_offset_of(i, block, nranks) < slab


# -- in-world behaviour ------------------------------------------------------

def test_paper_example_subscript():
    """sa[0] = 1; cout << sa[0]; (paper §III-A)."""
    def body():
        sa = repro.SharedArray(np.int64, size=10)
        if repro.myrank() == 0:
            sa[0] = 1
        repro.barrier()
        return int(sa[0])

    assert run_spmd(body, ranks=4) == [1] * 4


def test_dynamic_init_threads():
    """sa.init(THREADS) — the dynamic upc_all_alloc-style form."""
    def body():
        sa = repro.SharedArray(np.int64)
        sa.init(repro.THREADS())
        sa[repro.myrank()] = repro.myrank() ** 2
        repro.barrier()
        return [int(sa[i]) for i in range(repro.ranks())]

    res = run_spmd(body, ranks=4)
    assert res[0] == [0, 1, 4, 9]


def test_every_element_readable_writable_from_every_rank():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=16, block=3)
        repro.barrier()
        if me == 0:
            for i in range(16):
                sa[i] = i * 11
        repro.barrier()
        assert all(sa[i] == i * 11 for i in range(16))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_affinity_matches_layout_math():
    def body():
        sa = repro.SharedArray(np.int64, size=20, block=2)
        repro.barrier()
        n = repro.ranks()
        for i in range(20):
            assert sa.where(i) == owner_of(i, 2, n)
            assert sa.gptr(i).where() == sa.where(i)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_negative_index():
    def body():
        sa = repro.SharedArray(np.int64, size=5)
        if repro.myrank() == 0:
            sa[-1] = 42
        repro.barrier()
        return int(sa[4])

    assert run_spmd(body, ranks=2) == [42, 42]


def test_out_of_range_raises():
    def body():
        sa = repro.SharedArray(np.int64, size=5)
        with pytest.raises(IndexError):
            sa[5]
        with pytest.raises(IndexError):
            sa[-6] = 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_use_before_init_raises():
    def body():
        sa = repro.SharedArray(np.int64)
        with pytest.raises(PgasError):
            sa[0]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_double_init_raises():
    def body():
        sa = repro.SharedArray(np.int64, size=4)
        with pytest.raises(PgasError):
            sa.init(4)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_local_view_and_indices_consistent():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=23, block=3)
        idx = sa.local_indices()
        lv = sa.local_view()
        lv[: len(idx)] = idx * 7  # owner-side writes
        repro.barrier()
        assert all(sa[int(i)] == i * 7 for i in idx)
        # cross-check someone else's elements too
        other = (me + 1) % repro.ranks()
        for i in range(23):
            if sa.where(i) == other:
                assert sa[i] == i * 7
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_read_range_spans_owners():
    def body():
        sa = repro.SharedArray(np.int64, size=20, block=3)
        idx = sa.local_indices()
        sa.local_view()[: len(idx)] = idx
        repro.barrier()
        got = sa.read_range(2, 17)
        assert np.array_equal(got, np.arange(2, 17))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_gptr_arithmetic_walks_local_slab():
    """The paper's no-phase rule in the shared_array context: gptr(i)+1
    addresses the owner's *next local element*, which for block
    size > 1 equals the next global element within the block."""
    def body():
        sa = repro.SharedArray(np.int64, size=12, block=4)
        idx = sa.local_indices()
        sa.local_view()[: len(idx)] = idx
        repro.barrier()
        p = sa.gptr(0)       # block [0..3] on rank 0
        assert (p + 1)[0] == 1
        assert (p + 3)[0] == 3
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_block_size_validation():
    def body():
        with pytest.raises(PgasError):
            repro.SharedArray(np.int64, size=4, block=0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_len():
    def body():
        sa = repro.SharedArray(np.int8, size=37)
        repro.barrier()
        return len(sa)

    assert run_spmd(body, ranks=2) == [37, 37]


def test_write_range_spans_owners():
    def body():
        sa = repro.SharedArray(np.int64, size=20, block=3)
        repro.barrier()
        if repro.myrank() == 0:
            sa.write_range(2, np.arange(100, 115))
        repro.barrier()
        got = sa.read_range(0, 20)
        expect = np.zeros(20, dtype=np.int64)
        expect[2:17] = np.arange(100, 115)
        assert np.array_equal(got, expect)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_write_range_bounds_checked():
    def body():
        sa = repro.SharedArray(np.int64, size=10)
        with pytest.raises(IndexError):
            sa.write_range(8, np.arange(5))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_read_write_range_roundtrip_property():
    def body():
        rng = np.random.default_rng(3)
        sa = repro.SharedArray(np.int64, size=64, block=5)
        repro.barrier()
        if repro.myrank() == 0:
            for _ in range(10):
                start = int(rng.integers(0, 60))
                n = int(rng.integers(1, 64 - start))
                vals = rng.integers(0, 1 << 40, n)
                sa.write_range(start, vals)
                assert np.array_equal(sa.read_range(start, start + n),
                                      vals)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))
