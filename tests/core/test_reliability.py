"""Delivery guarantees and failure detection of the reliable layer.

Complements ``tests/gasnet/test_chaos_conduit.py`` (which proves the
construct stack *works* under chaos): here we pin down the protocol
itself — FIFO preservation under reordering, per-op deadlines with
diagnostics, and the two failure detectors (world heartbeat for crashed
ranks, conduit ping/pong for severed connectivity).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.core.world import current, die
from repro.errors import CommTimeout, PeerFailure, RankDead
from repro.gasnet import ChaosConduit, ReliableConduit, SmpConduit
from repro.gasnet.reliability import ReliabilityConfig


# ------------------------------------------------------------- ordering

def test_fifo_preserved_under_reordering():
    """Reliable delivery restores per-(src,dst) FIFO even when the chaos
    conduit reorders: asyncs sent 0..N-1 to one target append in order."""
    order: list = []   # shared across rank threads

    def body():
        r = repro.myrank()

        def record(i):
            order.append(i)

        if r == 1:
            with repro.finish():
                for i in range(40):
                    repro.async_(0)(record, i)
        repro.barrier()
        if r == 0:
            assert order == list(range(40)), order[:10]
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=0, am_drop_rate=0.15, am_dup_rate=0.15,
                           am_reorder_rate=0.3)
    assert all(repro.spmd(body, ranks=2, conduit=conduit,
                          reliability={"seed": 0}))


# ------------------------------------------------------- rank death

@pytest.mark.parametrize("make_conduit", [
    pytest.param(lambda: SmpConduit(), id="smp"),
    pytest.param(
        lambda: ChaosConduit(seed=0, am_drop_rate=0.05, am_dup_rate=0.05),
        id="chaos",
    ),
])
def test_rank_death_mid_barrier(make_conduit):
    """Killing one rank mid-barrier must convert into PeerFailure on
    *every* other rank within the detection deadline — collectives are
    rendezvous-based, so only the heartbeat detector can see this."""
    observed: dict = {}

    def body():
        r = repro.myrank()
        if r == 1:
            die()
        t0 = time.monotonic()
        try:
            repro.barrier()
        except PeerFailure as e:
            observed[r] = (e.failed_rank, time.monotonic() - t0)
            raise
        pytest.fail("barrier completed despite dead rank")

    conduit = make_conduit()
    kw = {"reliability": {"seed": 0}} if isinstance(
        conduit, ChaosConduit) else {}
    with pytest.raises(RankDead):
        repro.spmd(body, ranks=4, conduit=conduit,
                   heartbeat_timeout=1.0, **kw)
    assert set(observed) == {0, 2, 3}
    for rank, (failed, dt) in observed.items():
        assert failed == 1, (rank, failed)
        assert dt < 10.0, (rank, dt)   # well inside op_timeout


def test_dead_rank_fails_pending_lock_acquire():
    """A pending acquire must observe the holder's death rather than
    queue forever."""
    observed: dict = {}

    def body():
        r = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        if r == 1:
            lk.acquire()
            # crash while holding the lock: rank 2's queued acquire can
            # only be unblocked by the failure detector
            die()
        time.sleep(0.2)  # let rank 1 take the lock first
        try:
            lk.acquire(timeout=10.0)
        except PeerFailure as e:
            observed[r] = e.failed_rank
            raise
        pytest.fail("acquired a lock held by a dead rank")

    with pytest.raises(RankDead):
        repro.spmd(body, ranks=3, heartbeat_timeout=0.8)
    assert observed == {0: 1, 2: 1}


def test_severed_connectivity_detected_by_peer_detector():
    """``kill_rank`` cuts a rank off at the conduit (it keeps running!);
    the reliable layer's ping/pong detector must declare it dead and
    fail peers blocked on it."""
    chaos = ChaosConduit(seed=0)
    observed: dict = {}

    def body():
        r = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        if r == 1:
            lk.acquire()
            chaos.kill_rank(1)      # now unreachable, still alive
            time.sleep(2.5)
            return True
        time.sleep(0.2)
        try:
            lk.acquire(timeout=10.0)
        except PeerFailure as e:
            observed[r] = e.failed_rank
            raise
        pytest.fail("acquired a lock held by an unreachable rank")

    with pytest.raises((RankDead, PeerFailure)):
        repro.spmd(body, ranks=3, conduit=chaos,
                   reliability={"seed": 0, "peer_timeout": 1.0})
    assert observed == {0: 1, 2: 1}


# --------------------------------------------------------- op deadlines

def test_op_deadline_raises_commtimeout_with_diagnostic():
    """A reply that can never arrive must surface as CommTimeout naming
    the stuck operation, not hang (peer detector disabled to isolate
    the per-op deadline path)."""
    chaos = ChaosConduit(seed=0)

    def body():
        r = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        if r == 1:
            # Hold the lock and go silent past rank 0's deadline; the
            # release (and with it rank 0's acquire reply) never comes.
            # (No kill_rank here: collectives ride the conduit now, so a
            # permanently partitioned rank would wedge finalization with
            # every failure detector disabled.)
            lk.acquire()
            time.sleep(2.5)
            return "held"
        time.sleep(0.2)
        try:
            lk.acquire(timeout=1.0)
        except CommTimeout as e:
            assert "lock" in str(e)
            return str(e)
        pytest.fail("expected CommTimeout")

    res = repro.spmd(
        body, ranks=2, conduit=chaos,
        reliability={"seed": 0, "peer_timeout": None, "op_deadline": 0.5},
    )
    assert "lock" in res[0]


def test_copy_handle_wait_timeout():
    from repro.core.copy import CopyHandle

    def body():
        if repro.myrank() == 0:
            h = CopyHandle(0, None)    # never completed
            with pytest.raises(CommTimeout):
                h.wait(timeout=0.2)
        repro.barrier()
        return True

    assert all(repro.spmd(body, ranks=2))


def test_lock_acquire_timeout_names_lock():
    def body():
        r = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        if r == 0:
            lk.acquire()
            repro.barrier()           # let rank 1 attempt
            time.sleep(0.8)
            lk.release()
        else:
            repro.barrier()
            with pytest.raises(CommTimeout) as ei:
                lk.acquire(timeout=0.2)
            assert "lock" in str(ei.value)
        repro.barrier()
        return True

    assert all(repro.spmd(body, ranks=2))


# -------------------------------------------------------- configuration

def test_reliability_knobs_through_world():
    """The ``reliability=`` World knob accepts True, a dict, or a
    ReliabilityConfig, and wraps exactly once."""
    def body():
        cond = current().world.conduit
        assert isinstance(cond, ReliableConduit)
        assert not isinstance(cond._inner, ReliableConduit)
        return True

    assert all(repro.spmd(body, ranks=2, reliability=True))
    assert all(repro.spmd(body, ranks=2,
                          reliability={"ack_timeout": 0.02}))
    assert all(repro.spmd(
        body, ranks=2,
        conduit=ReliableConduit(SmpConduit(),
                                ReliabilityConfig(seed=1)),
    ))


def test_retransmit_backoff_is_capped():
    cfg = ReliabilityConfig(ack_timeout=0.01, backoff=2.0, rto_max=0.1)
    rto = cfg.ack_timeout
    for _ in range(20):
        rto = min(rto * cfg.backoff, cfg.rto_max)
    assert rto == cfg.rto_max


def test_delay_conduit_wrapped_reliable():
    """Reliability composes over DelayConduit too (latency, no loss)."""
    from repro.gasnet import DelayConduit

    def body():
        r, n = repro.myrank(), repro.ranks()
        with repro.finish():
            repro.async_((r + 1) % n)(lambda: None)
        repro.barrier()
        return True

    assert all(repro.spmd(
        body, ranks=3,
        conduit=DelayConduit(base_delay=0.001, jitter=0.003),
        reliability={"seed": 0},
    ))
