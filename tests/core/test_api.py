"""Top-level API surface (Table I names)."""

import repro
from tests.conftest import run_spmd


def test_myrank_and_ranks(nranks):
    res = run_spmd(lambda: (repro.myrank(), repro.ranks()), ranks=nranks)
    assert res == [(r, nranks) for r in range(nranks)]


def test_upc_style_aliases():
    res = run_spmd(lambda: (repro.MYTHREAD(), repro.THREADS()), ranks=3)
    assert res == [(r, 3) for r in range(3)]


def test_advance_returns_progress_flag():
    # Single rank: with multiple ranks a fast peer's barrier token may
    # already sit in the inbox (collectives travel as AMs), making the
    # idle-advance assertion racy.
    def body():
        # nothing pending: no progress
        assert repro.advance() is False
        f = repro.async_(0)(lambda: 42)  # self-async sits in the queue
        assert repro.advance() is True
        assert f.get() == 42
        return True

    assert all(run_spmd(body, ranks=1))


def test_fence_completes_outstanding_copies():
    import numpy as np

    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=16, block=4)
        repro.barrier()
        if me == 0:
            src = repro.allocate(0, 4, np.int64)
            src.put(np.arange(4))
            h = repro.async_copy(src, sa.gptr(4), 4)
            repro.fence()
            assert h.done()
        repro.barrier()
        return int(sa[5])

    assert run_spmd(body, ranks=4) == [1, 1, 1, 1]


def test_current_world_exposes_ranks():
    def body():
        w = repro.current_world()
        return (w.n_ranks, len(w.ranks))

    assert run_spmd(body, ranks=3) == [(3, 3)] * 3
