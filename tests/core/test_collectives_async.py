"""Non-blocking collectives: futures driven by advance(), overlap with
local compute, and several collectives in flight at once."""

import numpy as np

import repro
from repro.core import collectives as coll
from tests.conftest import run_spmd


def test_async_future_completes_via_advance():
    """An async allreduce future must complete through explicit
    advance() calls alone — no hidden blocking wait."""
    def body():
        fut = coll.allreduce_async(repro.myrank() + 1)
        spins = 0
        while not fut.done():
            repro.advance()
            spins += 1
            assert spins < 200_000, "future never completed via advance"
        n = repro.ranks()
        assert fut.get() == n * (n + 1) // 2
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_async_overlaps_local_compute():
    """Work done between initiation and wait happens while the
    collective progresses; the result is unaffected."""
    def body():
        me = repro.myrank()
        fut = coll.allgather_async(me * me)
        # local compute the collective overlaps with
        acc = np.arange(50_000, dtype=np.int64).sum()
        assert acc == 49_999 * 50_000 // 2
        assert fut.get() == [r * r for r in range(repro.ranks())]
        return True

    assert all(run_spmd(body, ranks=4))


def test_multiple_collectives_in_flight():
    """Three different collectives initiated back-to-back, waited in
    reverse order: per-team sequencing keeps them independent."""
    def body():
        me = repro.myrank()
        f1 = coll.barrier_async()
        f2 = coll.allreduce_async(me, op="max")
        f3 = coll.allgather_async(chr(ord("a") + me))
        n = repro.ranks()
        assert f3.get() == [chr(ord("a") + r) for r in range(n)]
        assert f2.get() == n - 1
        assert f1.get() is None
        return True

    assert all(run_spmd(body, ranks=4))


def test_async_pipeline_of_dependent_collectives():
    """A chain where each collective's input depends on the previous
    one's output — the classic exscan/allreduce offsets pipeline,
    async end to end."""
    def body():
        me = repro.myrank()
        count = (me + 1) * 3
        off_f = coll.exscan_async(count)
        tot_f = coll.allreduce_async(count)
        offset, total = off_f.get(), tot_f.get()
        offs = coll.allgather(offset)
        assert offs == sorted(offs) and offs[0] == 0
        assert offs[-1] + repro.ranks() * 3 == total
        return True

    assert all(run_spmd(body, ranks=4))


def test_team_async_variants():
    def body():
        me = repro.myrank()
        evens = repro.Team([0, 2])
        odds = repro.Team([1, 3])
        team = evens if me % 2 == 0 else odds
        fg = team.allgather_async(me)
        fr = team.allreduce_async(1)
        fb = team.barrier_async()
        assert fg.get() == sorted(team.members)
        assert fr.get() == 2
        fb.get()
        return True

    assert all(run_spmd(body, ranks=4))


def test_async_root_only_results():
    """gather/reduce async futures resolve to None off-root, the real
    aggregate at the root — same contract as the blocking forms."""
    def body():
        me = repro.myrank()
        gf = coll.gather_async(me * 2, root=1)
        rf = coll.reduce_async(me, op="sum", root=1)
        g, r = gf.get(), rf.get()
        if me == 1:
            n = repro.ranks()
            assert g == [x * 2 for x in range(n)]
            assert r == n * (n - 1) // 2
        else:
            assert g is None and r is None
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_async_gatherv_and_alltoallv():
    def body():
        me, n = repro.myrank(), repro.ranks()
        vf = coll.gatherv_async(np.full(me + 1, me, dtype=np.int32),
                                root=0)
        af = coll.alltoallv_async(
            [np.full(2, me * 10 + d, dtype=np.int64) for d in range(n)])
        got = af.get()
        for src in range(n):
            assert np.array_equal(got[src],
                                  np.full(2, src * 10 + me))
        v = vf.get()
        if me == 0:
            expect = np.concatenate(
                [np.full(r + 1, r, dtype=np.int32) for r in range(n)])
            assert np.array_equal(v, expect)
        else:
            assert v is None
        return True

    assert all(run_spmd(body, ranks=3))
