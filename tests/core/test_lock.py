"""Global locks: mutual exclusion, FIFO service, trylock, misuse."""

import numpy as np
import pytest

import repro
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_mutual_exclusion_protects_read_modify_write():
    """Non-atomic RMW under a lock must not lose updates."""
    def body():
        lk = repro.GlobalLock()
        counter = repro.SharedVar(np.int64, init=0)
        repro.barrier()
        for _ in range(20):
            with lk:
                counter.value = counter.value + 1  # racy without the lock
        repro.barrier()
        return int(counter.value)

    res = run_spmd(body, ranks=4)
    assert res == [80] * 4


def test_lock_owner_can_be_any_rank():
    def body():
        lk = repro.GlobalLock(owner=1)
        repro.barrier()
        with lk:
            pass
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_trylock_reports_busy():
    def body():
        me = repro.myrank()
        lk = repro.GlobalLock()
        repro.barrier()
        if me == 0:
            assert lk.acquire(block=False) is True
        repro.barrier()
        if me == 1:
            assert lk.acquire(block=False) is False  # held by rank 0
        repro.barrier()
        if me == 0:
            lk.release()
        repro.barrier()
        if me == 1:
            assert lk.acquire(block=False) is True
            lk.release()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_release_without_hold_raises():
    def body():
        me = repro.myrank()
        lk = repro.GlobalLock()
        repro.barrier()
        if me == 1:
            with pytest.raises(PgasError):
                lk.release()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_distinct_locks_are_independent():
    def body():
        me = repro.myrank()
        a = repro.GlobalLock()
        b = repro.GlobalLock()
        assert a.lock_id != b.lock_id
        repro.barrier()
        if me == 0:
            a.acquire()
        repro.barrier()
        if me == 1:
            with b:   # must not block on a's holder
                pass
        repro.barrier()
        if me == 0:
            a.release()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_bad_owner_rejected():
    def body():
        with pytest.raises(PgasError):
            repro.GlobalLock(owner=7)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2, timeout=10))


def test_upc_global_lock_alloc_idiom():
    from repro.compat import upc

    def body():
        lk = upc.upc_global_lock_alloc()
        with lk:
            pass
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_acquire_timeout_raises_commtimeout():
    """A blocking acquire on a held lock honours its timeout and names
    the lock in the diagnostic."""
    import time

    from repro.errors import CommTimeout

    def body():
        me = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        if me == 0:
            lk.acquire()
            repro.barrier()
            time.sleep(0.6)
            lk.release()
        else:
            repro.barrier()
            with pytest.raises(CommTimeout) as ei:
                lk.acquire(timeout=0.15)
            assert "lock" in str(ei.value)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_pending_acquire_observes_holder_death():
    """A queued acquire unblocks with PeerFailure when the holder dies
    (heartbeat detector), instead of waiting out its full timeout."""
    from repro.core.world import die
    from repro.errors import PeerFailure, RankDead

    observed = {}

    def body():
        import time as _t

        me = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        if me == 1:
            lk.acquire()
            die()
        _t.sleep(0.2)
        try:
            lk.acquire(timeout=10.0)
        except PeerFailure as e:
            observed[me] = e.failed_rank
            raise

    with pytest.raises(RankDead):
        repro.spmd(body, ranks=2, heartbeat_timeout=0.8)
    assert observed == {0: 1}
