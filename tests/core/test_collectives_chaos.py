"""Tree collectives over a lossy conduit.

The engine's AM traffic rides whatever conduit the world uses, so under
``ReliableConduit(ChaosConduit)`` every token/fragment is retransmitted
until acked and duplicates are suppressed — collectives must deliver
exactly-once results under drops, dups, and reordering, and convert a
participant's death into a clean failure rather than a hang.  Seeds are
fixed so CI reruns the same fault schedule."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.core import collectives as coll
from repro.core.world import die
from repro.errors import PeerFailure, RankDead
from repro.gasnet import ChaosConduit


CHAOS = dict(am_drop_rate=0.15, am_dup_rate=0.15, am_reorder_rate=0.3)


def _spmd_chaos(body, ranks=4, seed=0, **kw):
    return repro.spmd(body, ranks=ranks,
                      conduit=ChaosConduit(seed=seed, **CHAOS),
                      reliability={"seed": seed}, timeout=60.0, **kw)


def test_all_collectives_exactly_once_under_chaos():
    """One pass over the whole surface: dropped tokens are
    retransmitted, duplicated ones are suppressed — every result is
    bit-identical to the fault-free answer."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        repro.barrier()
        assert coll.allreduce(me + 1) == n * (n + 1) // 2
        assert coll.bcast("payload" if me == 0 else None,
                          root=0) == "payload"
        assert coll.allgather(me) == list(range(n))
        g = coll.gather(me * 2, root=1)
        assert g == ([x * 2 for x in range(n)] if me == 1 else None)
        got = coll.alltoall([f"{me}->{d}" for d in range(n)])
        assert got == [f"{s}->{me}" for s in range(n)]
        arr = coll.allreduce(np.full(8, me, dtype=np.int64))
        assert np.array_equal(arr, np.full(8, n * (n - 1) // 2))
        assert coll.scan(1) == me + 1
        repro.barrier()
        return True

    for seed in (0, 1, 7):
        assert all(_spmd_chaos(body, ranks=4, seed=seed))


def test_repeated_barriers_under_chaos_stay_in_step():
    """Sequence numbers keep 30 back-to-back barriers from absorbing a
    late retransmit of an earlier round's token."""
    import threading
    counter = {"n": 0}
    lock = threading.Lock()

    def body():
        for i in range(30):
            with lock:
                counter["n"] += 1
            repro.barrier()
            with lock:
                # after barrier i, every rank has done i+1 increments
                assert counter["n"] >= (i + 1) * repro.ranks()
        return True

    assert all(_spmd_chaos(body, ranks=4, seed=3))


def test_nonpower_of_two_under_chaos():
    """Bruck rounds and the dissemination pattern are irregular at P=5;
    chaos must not break the round bookkeeping."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        assert coll.allgather((me, me * me)) == [(r, r * r)
                                                 for r in range(n)]
        assert coll.allreduce(me, op="max") == n - 1
        repro.barrier()
        return True

    assert all(_spmd_chaos(body, ranks=5, seed=2))


def test_rank_death_mid_collective_raises_rankdead():
    """A participant dying between initiating and completing an
    allreduce must surface as PeerFailure on survivors (heartbeat
    detector) and RankDead from spmd — not a silent hang."""
    observed: dict = {}

    def body():
        r = repro.myrank()
        if r == 2:
            coll.allreduce_async(r)   # initiate, then die mid-flight
            die()
        time.sleep(0.1)
        try:
            coll.allreduce(r)
        except PeerFailure as e:
            observed[r] = e.failed_rank
            raise
        pytest.fail("allreduce completed despite dead participant")

    with pytest.raises(RankDead):
        repro.spmd(body, ranks=4,
                   conduit=ChaosConduit(seed=0, am_drop_rate=0.05,
                                        am_dup_rate=0.05),
                   reliability={"seed": 0}, heartbeat_timeout=1.0,
                   timeout=30.0)
    assert set(observed) == {0, 1, 3}
    assert all(f == 2 for f in observed.values())


def test_async_collectives_under_chaos():
    def body():
        me, n = repro.myrank(), repro.ranks()
        f1 = coll.allgather_async(me)
        f2 = coll.allreduce_async(me + 1)
        assert f1.get() == list(range(n))
        assert f2.get() == n * (n + 1) // 2
        repro.barrier()
        return True

    assert all(_spmd_chaos(body, ranks=4, seed=5))
