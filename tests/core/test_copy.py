"""Bulk transfer: copy / async_copy / async_copy_fence / events."""

import numpy as np
import pytest

import repro
from repro.errors import BadPointer
from tests.conftest import run_spmd


def test_copy_between_remote_segments():
    def body():
        me = repro.myrank()
        src = dst = None
        if me == 0:
            src = repro.allocate(1, 64, np.float64)   # data on rank 1
            dst = repro.allocate(2, 64, np.float64)   # dest on rank 2
            src.put(np.linspace(0, 1, 64))
            # third-party copy: rank 0 moves rank1 -> rank2
            repro.copy(src, dst, 64)
            assert np.allclose(dst.get(64), np.linspace(0, 1, 64))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_copy_partial_count_and_offset():
    def body():
        me = repro.myrank()
        if me == 0:
            src = repro.allocate(0, 10, np.int64)
            dst = repro.allocate(1, 10, np.int64)
            src.put(np.arange(10))
            repro.copy(src + 2, dst + 5, 3)
            out = dst.get(10)
            assert list(out) == [0, 0, 0, 0, 0, 2, 3, 4, 0, 0]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_copy_zero_count_is_noop():
    def body():
        src = repro.allocate(repro.myrank(), 4, np.int64)
        repro.copy(src, src, 0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_copy_dtype_size_mismatch_rejected():
    def body():
        a = repro.allocate(repro.myrank(), 4, np.int64)
        b = repro.allocate(repro.myrank(), 4, np.int32)
        with pytest.raises(BadPointer):
            repro.copy(a, b, 4)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_copy_reinterprets_same_width_dtypes():
    def body():
        if repro.myrank() == 0:
            a = repro.allocate(0, 4, np.int64)
            b = repro.allocate(0, 4, np.uint64)
            a.put(np.array([1, 2, 3, 4]))
            repro.copy(a, b, 4)
            assert list(b.get(4)) == [1, 2, 3, 4]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_copy_null_pointer_rejected():
    def body():
        a = repro.allocate(repro.myrank(), 4, np.int64)
        with pytest.raises(BadPointer):
            repro.copy(repro.null_ptr(np.int64), a, 4)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_async_copy_fence_completes_all():
    def body():
        me = repro.myrank()
        if me == 0:
            srcs = [repro.allocate(1, 8, np.int64) for _ in range(4)]
            dsts = [repro.allocate(2, 8, np.int64) for _ in range(4)]
            handles = []
            for k, (s, d) in enumerate(zip(srcs, dsts)):
                s.put(np.full(8, k))
                handles.append(repro.async_copy(s, d, 8))
            repro.async_copy_fence()
            assert all(h.done() for h in handles)
            for k, d in enumerate(dsts):
                assert np.all(d.get(8) == k)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_async_copy_signals_event():
    def body():
        if repro.myrank() == 0:
            e = repro.Event()
            s = repro.allocate(0, 8, np.int64)
            d = repro.allocate(1, 8, np.int64)
            repro.async_copy(s, d, 8, event=e)
            e.wait()
            assert e.test()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_handle_wait_and_bytes():
    def body():
        if repro.myrank() == 0:
            s = repro.allocate(0, 16, np.float64)
            d = repro.allocate(1, 16, np.float64)
            h = repro.async_copy(s, d, 16)
            h.wait()
            assert h.nbytes == 128
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_memcpy_table1_idiom():
    """Table I: upc_memcpy(...) == copy<Type>(...)."""
    from repro.compat import upc

    def body():
        if repro.myrank() == 0:
            src = repro.allocate(1, 32, np.uint8)
            dst = repro.allocate(0, 32, np.uint8)
            src.put(np.arange(32, dtype=np.uint8))
            upc.upc_memcpy(dst, src, 32)
            assert np.array_equal(dst.get(32),
                                  np.arange(32, dtype=np.uint8))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_outstanding_copies_pruned_without_fence():
    """Handle-only programs (never calling async_copy_fence) must not
    accumulate completed handles without bound."""
    def body():
        me = repro.myrank()
        if me == 0:
            ctx = repro.current_world().ranks[0]
            s = repro.allocate(0, 8, np.float64)
            d = repro.allocate(1, 8, np.float64)
            for _ in range(100):
                repro.async_copy(s, d, 8).wait()
            # completed handles are dropped at the next issue, not leaked
            assert len(ctx.outstanding_copies) <= 1
            repro.async_copy_fence()
            assert len(ctx.outstanding_copies) == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_copy_handle_wait_timeout():
    """wait(timeout=...) on a stuck handle raises CommTimeout instead of
    blocking until the world's op_timeout."""
    from repro.core.copy import CopyHandle
    from repro.errors import CommTimeout

    def body():
        if repro.myrank() == 0:
            h = CopyHandle(0, None)     # never completed
            with pytest.raises(CommTimeout):
                h.wait(timeout=0.2)
            assert not h.done()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
