"""Global pointer semantics (paper §III-B), incl. the no-phase rule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.global_ptr import GlobalPtr, null_ptr
from repro.errors import BadPointer
from tests.conftest import run_spmd


# -- pure pointer arithmetic (no world required) ---------------------------

def test_arithmetic_steps_by_element_size():
    p = GlobalPtr(rank=1, offset=64, dtype=np.float64)
    q = p + 3
    assert q.offset == 64 + 24 and q.rank == 1
    assert (q - 3).offset == 64
    assert q - p == 3


def test_no_phase_pointer_stays_on_owner():
    """UPC++ dropped UPC's pointer phase: p+1 never changes rank."""
    p = GlobalPtr(rank=2, offset=0, dtype=np.int64)
    for i in range(100):
        assert (p + i).rank == 2


def test_radd():
    p = GlobalPtr(rank=0, offset=0, dtype=np.int32)
    assert (5 + p).offset == 20


def test_difference_requires_same_rank_and_dtype():
    a = GlobalPtr(rank=0, offset=8, dtype=np.int64)
    b = GlobalPtr(rank=1, offset=0, dtype=np.int64)
    with pytest.raises(BadPointer):
        _ = a - b
    c = GlobalPtr(rank=0, offset=0, dtype=np.int32)
    with pytest.raises(BadPointer):
        _ = a - c


def test_difference_requires_element_alignment():
    a = GlobalPtr(rank=0, offset=4, dtype=np.int64)
    b = GlobalPtr(rank=0, offset=0, dtype=np.int64)
    with pytest.raises(BadPointer):
        _ = a - b


def test_ordering():
    a = GlobalPtr(rank=0, offset=8, dtype=np.uint8)
    b = GlobalPtr(rank=1, offset=0, dtype=np.uint8)
    assert a < b and a <= b and not b < a


def test_null_pointer():
    p = null_ptr(np.int64)
    assert p.is_null and not bool(p)
    with pytest.raises(BadPointer):
        _ = p + 1
    with pytest.raises(BadPointer):
        p.get()


def test_cast_roundtrip_preserves_address():
    p = GlobalPtr(rank=3, offset=40, dtype=np.float64)
    v = p.cast(np.uint8)        # global_ptr<void> equivalent
    assert v.offset == 40 and v.itemsize == 1
    back = v.cast(np.float64)
    assert back == p


def test_where():
    assert GlobalPtr(rank=5, offset=0, dtype=np.int8).where() == 5


@settings(max_examples=100, deadline=None)
@given(
    off=st.integers(0, 1 << 20),
    steps=st.lists(st.integers(-50, 50), min_size=1, max_size=20),
)
def test_arithmetic_is_additive(off, steps):
    """Property: walking step-by-step equals one jump by the sum."""
    p = GlobalPtr(rank=0, offset=off, dtype=np.int64)
    q = p
    for s in steps:
        q = q + s
    assert q == p + sum(steps)
    assert q - p == sum(steps)


def test_pointers_are_picklable():
    import pickle

    p = GlobalPtr(rank=2, offset=16, dtype=np.float32)
    q = pickle.loads(pickle.dumps(p))
    assert q == p and q.dtype == np.dtype(np.float32)


# -- in-world behaviour ------------------------------------------------------

def test_get_put_scalar_and_bulk():
    def body():
        me = repro.myrank()
        p = repro.allocate(me, 8, np.int64)
        p.put(np.arange(8) * (me + 1))
        assert p[3] == 3 * (me + 1)
        p[3] = -1
        assert np.array_equal(
            p.get(8)[:5], np.array([0, me + 1, 2 * (me + 1), -1,
                                    4 * (me + 1)])
        )
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_local_cast_only_on_owner():
    def body():
        me = repro.myrank()
        ptr = None
        if me == 0:
            ptr = repro.allocate(0, 4, np.int64)
            view = ptr.local(4)
            view[:] = 7
        ptr = repro.collectives.bcast(ptr, root=0)
        if me == 1:
            with pytest.raises(BadPointer):
                ptr.local(4)  # remote memory has no local address
            assert ptr[0] == 7  # but one-sided access works
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_atomic_ops_on_pointer():
    def body():
        me = repro.myrank()
        ptr = None
        if me == 0:
            ptr = repro.allocate(0, 1, np.int64)
            ptr.put(10)
        ptr = repro.collectives.bcast(ptr, root=0)
        repro.barrier()
        old = ptr.atomic("add", 1)  # every rank increments once
        assert old >= 10
        repro.barrier()
        assert ptr[0] == 10 + repro.ranks()
        with pytest.raises(BadPointer):
            ptr.atomic("nonsense", 1)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_atomic_min_max():
    def body():
        me = repro.myrank()
        ptr = None
        if me == 0:
            ptr = repro.allocate(0, 2, np.int64)
            ptr.put(np.array([100, -100]))
        ptr = repro.collectives.bcast(ptr, root=0)
        repro.barrier()
        ptr.atomic("min", me * 10)          # min over {0,10,20,...,100}
        (ptr + 1).atomic("max", me * 10)    # max over {-100,0,...,30}
        repro.barrier()
        assert ptr[0] == 0
        assert ptr[1] == (repro.ranks() - 1) * 10
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_compare_swap_single_winner():
    """Exactly one rank wins a CAS race from the initial value."""
    def body():
        me = repro.myrank()
        cell = None
        if me == 0:
            cell = repro.allocate(0, 1, np.int64)
            cell.put(-1)
        cell = repro.collectives.bcast(cell, root=0)
        repro.barrier()
        won = cell.compare_swap(-1, me)
        winners = repro.collectives.allreduce(int(won))
        assert winners == 1
        final = int(cell[0])
        assert 0 <= final < repro.ranks()
        repro.barrier()
        return won

    results = run_spmd(body, ranks=4)
    assert sum(results) == 1


def test_compare_swap_fails_on_mismatch():
    def body():
        if repro.myrank() == 0:
            cell = repro.allocate(0, 1, np.int64)
            cell.put(5)
            assert not cell.compare_swap(7, 9)
            assert cell[0] == 5
            assert cell.compare_swap(5, 9)
            assert cell[0] == 9
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
