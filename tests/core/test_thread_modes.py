"""Thread-support modes (paper §IV): serialized vs concurrent.

In serialized mode, AMs are only processed when the target rank makes a
runtime call — so an async sent to a compute-busy rank waits.  In
concurrent mode the shared progress thread (the paper's "worker
Pthread") services it meanwhile.
"""

import time

import repro
from tests.conftest import run_spmd


def _busy_loop(stop_at: float) -> int:
    """Compute without touching the runtime until the deadline."""
    x = 0
    while time.perf_counter() < stop_at:
        x += 1
    return x


def test_serialized_mode_defers_tasks_until_progress():
    def body():
        me = repro.myrank()
        repro.barrier()
        elapsed = 0.0
        if me == 0:
            t0 = time.perf_counter()
            f = repro.async_(1)(lambda: "served")
            # rank 1 is busy below and not polling; our get() waits for
            # its next runtime call.
            assert f.get(timeout=20) == "served"
            elapsed = time.perf_counter() - t0
        else:
            _busy_loop(time.perf_counter() + 0.3)
            repro.advance()  # explicit progress (paper's advance())
        repro.barrier()
        return elapsed

    res = run_spmd(body, ranks=2)
    assert res[0] >= 0.25  # served only after the busy loop


def test_concurrent_mode_services_busy_ranks():
    def body():
        me = repro.myrank()
        repro.barrier()
        elapsed = 0.0
        if me == 0:
            t0 = time.perf_counter()
            f = repro.async_(1)(lambda: "served")
            assert f.get(timeout=20) == "served"
            elapsed = time.perf_counter() - t0
        else:
            _busy_loop(time.perf_counter() + 0.5)
        repro.barrier()
        return elapsed

    res = run_spmd(body, ranks=2, thread_mode="concurrent")
    # The progress thread served the task while rank 1 was computing.
    assert res[0] < 0.45


def test_concurrent_mode_runs_full_workload():
    """The whole shared-object API works under the progress thread."""
    import numpy as np

    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=8, block=1)
        repro.barrier()
        sa[me] = me * 3
        repro.barrier()
        total = repro.collectives.allreduce(int(sa[me]))
        with repro.finish():
            repro.async_((me + 1) % repro.ranks())(int, 1)
        return total

    res = run_spmd(body, ranks=4, thread_mode="concurrent")
    assert res == [0 + 3 + 6 + 9] * 4
