"""Dynamic global memory management (paper §III-C): local and remote."""

import numpy as np
import pytest

import repro
from repro.errors import BadPointer, SegmentOutOfMemory
from tests.conftest import run_spmd


def test_paper_example_allocate_on_rank_2():
    """'allocates space for 64 integers on thread 2' (paper §III-C)."""
    def body():
        sp = repro.allocate(2, 64, np.int64)
        assert sp.where() == 2
        repro.barrier()
        repro.deallocate(sp)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_remote_allocation_lands_in_owner_segment():
    def body():
        me = repro.myrank()
        target = (me + 1) % repro.ranks()
        before = repro.current_world().ranks[target].segment.bytes_in_use
        p = repro.allocate(target, 100, np.float64)
        after = repro.current_world().ranks[target].segment.bytes_in_use
        assert after - before >= 800
        repro.barrier()
        repro.deallocate(p)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_allocation_is_zero_initialized():
    def body():
        p = repro.allocate((repro.myrank() + 1) % repro.ranks(), 32,
                           np.int32)
        assert np.all(p.get(32) == 0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_deallocate_from_any_rank():
    """'freed by calling deallocate from any UPC++ thread' (§III-C)."""
    def body():
        me = repro.myrank()
        p = None
        if me == 0:
            p = repro.allocate(1, 16, np.int64)  # memory on rank 1
        p = repro.collectives.bcast(p, root=0)
        repro.barrier()
        if me == 2:
            repro.deallocate(p)  # a third rank frees it
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_remote_double_free_raises_at_caller():
    def body():
        me = repro.myrank()
        if me == 0:
            p = repro.allocate(1, 16, np.int64)
            repro.deallocate(p)
            with pytest.raises(BadPointer):
                repro.deallocate(p)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_deallocate_null_is_noop():
    def body():
        repro.deallocate(repro.null_ptr())
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_segment_exhaustion_raises():
    def body():
        with pytest.raises(SegmentOutOfMemory):
            repro.allocate(repro.myrank(), 1 << 30, np.uint8)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_exhaustion_raises_at_caller():
    def body():
        me = repro.myrank()
        if me == 0:
            with pytest.raises(SegmentOutOfMemory):
                repro.allocate(1, 1 << 30, np.uint8)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_alignment_respects_dtype():
    def body():
        p = repro.allocate(0, 3, np.float64)
        assert p.offset % 8 == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_escalate_private_array_to_shared():
    """Paper §III-C: escalating a private object into a shared object.

    (Deviation note in the docstring: our conduit is segment-fast, so
    escalation copies into the segment and hands back the live view.)"""
    def body():
        me = repro.myrank()
        local = np.arange(12, dtype=np.float64).reshape(3, 4) * (me + 1)
        ptr, view = repro.escalate(local)
        assert ptr.where() == me
        assert np.array_equal(view, local)
        view[1, 1] = -5.0  # owner writes through the live view
        d = repro.Directory()
        d.publish_and_sync(ptr)
        other = (me + 1) % repro.ranks()
        remote = d.lookup(other)
        got = remote.get(12).reshape(3, 4)
        assert got[1, 1] == -5.0              # remote sees the update
        assert got[0, 1] == 1.0 * (other + 1)
        repro.barrier()
        repro.deallocate(ptr)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_escalate_rejects_object_arrays():
    def body():
        with pytest.raises(repro.BadPointer):
            repro.escalate(np.array([object()], dtype=object))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))
