"""SPMD world lifecycle: launch, results, failure propagation."""

import threading

import pytest

import repro
from repro.errors import CommTimeout, NotInSpmdRegion, PeerFailure, PgasError
from tests.conftest import run_spmd


def test_spmd_returns_per_rank_results(nranks):
    res = run_spmd(lambda: repro.myrank() * 10, ranks=nranks)
    assert res == [r * 10 for r in range(nranks)]


def test_spmd_passes_args_and_kwargs():
    res = run_spmd(
        lambda a, b=0: (repro.myrank(), a, b), ranks=2,
        args=(1,), kwargs={"b": 2},
    )
    assert res == [(0, 1, 2), (1, 1, 2)]


def test_ranks_run_on_distinct_threads():
    def body():
        repro.barrier()  # all ranks alive at once -> idents can't recycle
        ident = threading.get_ident()
        repro.barrier()
        return ident

    res = run_spmd(body, ranks=4)
    assert len(set(res)) == 4


def test_api_outside_spmd_raises():
    with pytest.raises(NotInSpmdRegion):
        repro.myrank()
    with pytest.raises(NotInSpmdRegion):
        repro.barrier()


def test_exception_propagates_to_launcher():
    def body():
        if repro.myrank() == 1:
            raise ValueError("rank 1 exploded")
        repro.barrier()

    with pytest.raises(ValueError, match="rank 1 exploded"):
        run_spmd(body, ranks=3)


def test_peer_failure_unblocks_barrier_waiters():
    """Ranks blocked in a barrier must not hang when a peer dies."""
    def body():
        if repro.myrank() == 0:
            raise RuntimeError("early death")
        repro.barrier()  # would deadlock without failure propagation

    with pytest.raises(RuntimeError, match="early death"):
        run_spmd(body, ranks=4, timeout=20)


def test_peer_failure_object_fields():
    failure_seen = {}

    def body():
        if repro.myrank() == 0:
            raise RuntimeError("boom")
        try:
            repro.barrier()
        except PeerFailure as pf:
            failure_seen["rank"] = pf.failed_rank
            raise

    with pytest.raises(RuntimeError):
        run_spmd(body, ranks=2, timeout=20)
    assert failure_seen["rank"] == 0


def test_nested_spmd_rejected():
    def body():
        with pytest.raises(PgasError):
            repro.spmd(lambda: None, ranks=1)
        return True

    assert all(run_spmd(body, ranks=1))


def test_single_rank_world():
    res = run_spmd(lambda: (repro.myrank(), repro.ranks()), ranks=1)
    assert res == [(0, 1)]


def test_world_needs_positive_ranks():
    with pytest.raises(ValueError):
        repro.spmd(lambda: None, ranks=0)


def test_bad_thread_mode_rejected():
    with pytest.raises(ValueError):
        repro.spmd(lambda: None, ranks=1, thread_mode="weird")


def test_blocking_op_times_out_with_comm_timeout():
    """A rank waiting on an event nobody signals must hit the watchdog."""
    def body():
        if repro.myrank() == 0:
            e = repro.Event()
            e.incref()  # registered but never signaled
            e.wait(timeout=0.2)

    with pytest.raises(CommTimeout):
        run_spmd(body, ranks=2, timeout=10)


def test_rank_context_is_thread_local():
    """The launching thread has no context while ranks run."""
    def body():
        repro.barrier()
        return repro.myrank()

    res = run_spmd(body, ranks=2)
    assert res == [0, 1]
    with pytest.raises(NotInSpmdRegion):
        repro.myrank()


def test_scratch_is_per_rank():
    def body():
        ctx = repro.current_world().ranks[repro.myrank()]
        ctx.scratch["x"] = repro.myrank()
        repro.barrier()
        return ctx.scratch["x"]

    assert run_spmd(body, ranks=3) == [0, 1, 2]


def test_worlds_are_isolated():
    """Sequential worlds do not leak segments or collective state."""
    def body():
        sa = repro.SharedArray(dtype=int, size=8)
        sa[repro.myrank()] = repro.myrank()
        repro.barrier()
        return int(sa[0])

    first = run_spmd(body, ranks=2)
    second = run_spmd(body, ranks=2)
    assert first == second == [0, 0]
