"""Batched RMA engine: vectorized layout math, gather/scatter,
atomic_batch, and the coalescing guarantees of the bulk paths."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.shared_array import (
    SharedArray,
    global_index_of,
    local_offset_of,
    owner_of,
)
from tests.conftest import run_spmd


# -- vectorized layout math vs. the scalar reference --------------------

@settings(max_examples=100, deadline=None)
@given(
    size=st.integers(1, 5000),
    block=st.integers(1, 17),
    nranks=st.integers(1, 9),
    seed=st.integers(0, 2**31 - 1),
)
def test_vectorized_layout_matches_scalar(size, block, nranks, seed):
    """Property: array-input owner_of/local_offset_of/global_index_of
    agree elementwise with the scalar reference."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, size, size=64, dtype=np.int64)
    owners = owner_of(idx, block, nranks)
    offs = local_offset_of(idx, block, nranks)
    back = global_index_of(owners, offs, block, nranks)
    for k in range(idx.size):
        i = int(idx[k])
        assert owners[k] == owner_of(i, block, nranks)
        assert offs[k] == local_offset_of(i, block, nranks)
        assert back[k] == i


@settings(max_examples=50, deadline=None)
@given(
    block=st.integers(1, 9),
    nranks=st.integers(1, 6),
)
def test_vectorized_roundtrip_is_bijection(block, nranks):
    idx = np.arange(0, 2000, dtype=np.int64)
    owners = owner_of(idx, block, nranks)
    offs = local_offset_of(idx, block, nranks)
    assert np.all((0 <= owners) & (owners < nranks))
    assert np.array_equal(
        global_index_of(owners, offs, block, nranks), idx
    )


# -- gather / scatter ----------------------------------------------------

def test_gather_scatter_roundtrip():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=61, block=4)
        repro.barrier()
        if me == 0:
            idx = np.array([0, 60, 13, 7, 7, 59, -1, 20])
            sa.scatter(idx[:4], [10, 20, 30, 40])
            got = sa.gather([0, 60, 13, 7])
            assert list(got) == [10, 20, 30, 40]
            # negative indices resolve like scalar access
            assert sa.gather([-1])[0] == sa[60]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_gather_matches_elementwise_random():
    def body():
        sa = repro.SharedArray(np.int64, size=97, block=3)
        mine = sa.local_indices()
        sa.local_view()[: len(mine)] = mine * 7
        repro.barrier()
        rng = np.random.default_rng(repro.myrank())
        idx = rng.integers(0, 97, size=50)
        got = sa.gather(idx)
        assert all(got[k] == sa[int(i)] for k, i in enumerate(idx))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_scatter_broadcasts_scalar():
    def body():
        sa = repro.SharedArray(np.int64, size=20)
        repro.barrier()
        if repro.myrank() == 0:
            sa.scatter(np.arange(20), -5)
            assert np.all(sa.read_range(0, 20) == -5)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_gather_bounds_checked():
    def body():
        sa = repro.SharedArray(np.int64, size=10)
        with pytest.raises(IndexError):
            sa.gather([0, 10])
        with pytest.raises(IndexError):
            sa.scatter([-11], [1])
        with pytest.raises(IndexError):
            sa.gather([1.5])  # no silent float truncation
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_empty_batches_are_noops():
    def body():
        sa = repro.SharedArray(np.int64, size=8)
        assert sa.gather([]).size == 0
        sa.scatter([], [])
        assert sa.atomic_batch([], "add", []) is None
        assert sa.atomic_batch([], "add", [], return_old=True).size == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


# -- atomic_batch vs sequential atomics ---------------------------------

@pytest.mark.parametrize("op", ["xor", "add", "and", "or", "min", "max"])
def test_atomic_batch_equals_sequential(op):
    def body(op=op):
        me = repro.myrank()
        a = repro.SharedArray(np.uint64, size=32)
        b = repro.SharedArray(np.uint64, size=32)
        init = (np.arange(32, dtype=np.uint64) * 977) ^ np.uint64(0x5A5A)
        mine = a.local_indices()
        a.local_view()[: len(mine)] = init[mine]
        b.local_view()[: len(mine)] = init[mine]
        repro.barrier()
        rng = np.random.default_rng(100 + me)
        idx = rng.integers(0, 32, size=40, dtype=np.int64)  # duplicates!
        vals = rng.integers(0, 2**63, size=40, dtype=np.uint64)
        a.atomic_batch(idx, op, vals)
        for i, v in zip(idx, vals):
            b.atomic(int(i), op, v)
        repro.barrier()
        ga = a.read_range(0, 32)
        gb = b.read_range(0, 32)
        assert np.array_equal(ga, gb), (op, ga, gb)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_atomic_batch_return_old_sequential_semantics():
    def body():
        sa = repro.SharedArray(np.int64, size=4)
        repro.barrier()
        if repro.myrank() == 0:
            sa.scatter([0, 1, 2, 3], [100, 200, 300, 400])
            # duplicate index: old values must reflect issue order
            old = sa.atomic_batch([1, 1, 2], "add", [5, 5, 5],
                                  return_old=True)
            assert list(old) == [200, 205, 300]
            assert sa[1] == 210 and sa[2] == 305
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_atomic_batch_callable_op():
    def body():
        sa = repro.SharedArray(np.int64, size=6)
        repro.barrier()
        if repro.myrank() == 0:
            sa.scatter(np.arange(6), np.arange(6))
            sa.atomic_batch(np.arange(6), lambda old, v: old * v, 3)
            assert list(sa.read_range(0, 6)) == [0, 3, 6, 9, 12, 15]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


# -- coalescing guarantees ----------------------------------------------

def _conduit_ops(snap):
    return (snap["puts"] + snap["gets"] + snap["atomics"]
            + snap["puts_indexed"] + snap["gets_indexed"]
            + snap["atomic_batches"])


def test_gather_one_conduit_op_per_owner():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        sa = repro.SharedArray(np.int64, size=256, block=1)
        repro.barrier()
        stats = repro.current_world().ranks[me].stats
        s0 = stats.snapshot()
        sa.gather(np.arange(256))  # touches every rank
        s1 = stats.snapshot()
        assert _conduit_ops(s1) - _conduit_ops(s0) == n - 1
        # per-element remote accounting is preserved
        assert (s1["remote_accesses"] - s0["remote_accesses"]
                == 256 - 256 // n)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


@pytest.mark.parametrize("block", [1, 3, 8, 64])
def test_read_write_range_at_most_nranks_rmas(block):
    def body(block=block):
        me = repro.myrank()
        n = repro.ranks()
        sa = repro.SharedArray(np.int64, size=120, block=block)
        repro.barrier()
        stats = repro.current_world().ranks[me].stats
        s0 = stats.snapshot()
        sa.read_range(1, 118)
        s1 = stats.snapshot()
        assert _conduit_ops(s1) - _conduit_ops(s0) <= n
        sa.write_range(1, np.arange(117))
        s2 = stats.snapshot()
        assert _conduit_ops(s2) - _conduit_ops(s1) <= n
        repro.barrier()
        assert np.array_equal(sa.read_range(1, 118), np.arange(117))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_gups_batched_coalesces_vs_element_baseline():
    """Acceptance: the batched GUPS loop issues >= 3x fewer conduit ops
    than the per-element baseline at 4 ranks x 512 updates."""
    from repro.bench import gups

    batched = gups.run(ranks=4, log2_table_size=10, updates_per_rank=512,
                       variant="upcxx", verify=True)
    element = gups.run(ranks=4, log2_table_size=10, updates_per_rank=512,
                       variant="upcxx-element", verify=True)
    assert batched.verified and element.verified
    assert batched.conduit_ops * 3 <= element.conduit_ops
    assert batched.updates == element.updates == 4 * 512


def test_batched_and_element_gups_index_identically():
    from repro.bench.gups import _index_of
    from repro.util.rng import splitmix64_array

    stream = np.arange(1, 200, dtype=np.uint64) * np.uint64(0x9E3779B9)
    mask = 1023
    vec = splitmix64_array(stream) & np.uint64(mask)
    for k, ran in enumerate(stream):
        assert int(vec[k]) == _index_of(int(ran), mask)


# -- owner-side cache after unpickle (satellite fix) --------------------

def test_unpickled_array_rebuilds_owner_fast_path():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=16, block=1)
        mine = sa.local_indices()
        sa.local_view()[: len(mine)] = mine + 1000
        repro.barrier()
        clone = pickle.loads(pickle.dumps(sa))
        stats = repro.current_world().ranks[me].stats
        s0 = stats.snapshot()
        own = int(mine[0])
        assert clone[own] == own + 1000      # owner-side read
        clone[own] = own + 2000              # owner-side write
        s1 = stats.snapshot()
        # both accesses took the local fast path, no conduit ops
        assert s1["local_accesses"] - s0["local_accesses"] == 2
        assert _conduit_ops(s1) == _conduit_ops(s0)
        # the write landed in the original's (shared) storage
        assert sa[own] == own + 2000
        # owner-side bulk view is rebound to *this* rank's slab
        assert np.array_equal(clone.local_view(), sa.local_view())
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_shared_instance_across_ranks_stays_correct():
    """One instance touched by a foreign rank context must not steal the
    owner's cached view: the foreign rank falls back to the conduit."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=8, block=1)
        repro.barrier()
        if me == 0:
            repro.current_world().ranks[0].scratch["sa"] = sa
        repro.barrier()
        shared = repro.current_world().ranks[0].scratch["sa"]
        # every rank reads its own element through rank 0's instance
        shared[me] = me * 3
        repro.barrier()
        assert shared[me] == me * 3
        assert sa[me] == me * 3
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))
