"""Per-rank object directories (the shared_array<ndarray> idiom)."""

import numpy as np
import pytest

import repro
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_publish_lookup_roundtrip():
    def body():
        me = repro.myrank()
        d = repro.Directory()
        d.publish_and_sync({"rank": me, "data": list(range(me))})
        other = (me + 1) % repro.ranks()
        got = d.lookup(other)
        assert got == {"rank": other, "data": list(range(other))}
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_lookup_unpublished_raises():
    def body():
        me = repro.myrank()
        d = repro.Directory()
        if me == 0:
            d.publish(1)
        repro.barrier()
        if me == 0:
            with pytest.raises(PgasError):
                d.lookup(1)  # rank 1 never published
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_lookup_is_by_value():
    def body():
        me = repro.myrank()
        d = repro.Directory()
        d.publish_and_sync([me])
        got = d.lookup((me + 1) % repro.ranks(), cached=False)
        got.append("mutated")
        repro.barrier()
        again = d.lookup((me + 1) % repro.ranks(), cached=False)
        assert again == [(me + 1) % repro.ranks()]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_cache_behaviour():
    def body():
        me = repro.myrank()
        d = repro.Directory()
        d.publish_and_sync(me)
        peer = (me + 1) % repro.ranks()
        first = d.lookup(peer)            # populates cache
        repro.barrier()
        d.publish(me + 100)               # overwrite our slot
        repro.barrier()
        cached = d.lookup(peer)           # stale by design
        fresh = d.lookup(peer, cached=False)
        assert cached == first == peer
        assert fresh == peer + 100
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_directories_are_distinct():
    def body():
        me = repro.myrank()
        d1 = repro.Directory()
        d2 = repro.Directory()
        d1.publish(("d1", me))
        d2.publish(("d2", me))
        repro.barrier()
        other = (me + 1) % repro.ranks()
        assert d1.lookup(other) == ("d1", other)
        assert d2.lookup(other) == ("d2", other)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_paper_idiom_directory_of_ndarrays():
    """shared_array< ndarray<int,3> > dir(THREADS) — §III-E."""
    from repro.arrays import RectDomain, ndarray

    def body():
        me = repro.myrank()
        d = repro.Directory()
        local = ndarray(np.int64, RectDomain((0, 0, 0), (2, 2, 2)))
        local.set(me)
        d.publish_and_sync(local)
        other = (me + 1) % repro.ranks()
        remote = d.lookup(other)
        assert remote[(1, 1, 1)] == other  # one-sided read through handle
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_lookup_all_gathers_every_slot():
    def body():
        me = repro.myrank()
        d = repro.Directory()
        d.publish_and_sync(("slot", me))
        assert d.lookup_all() == [("slot", r) for r in range(repro.ranks())]
        # Second call is served from the memoized cache (no AMs).
        ctx = repro.current_world().ranks[me]
        before = ctx.stats.snapshot()["ams_sent"]
        assert d.lookup_all() == [("slot", r) for r in range(repro.ranks())]
        assert ctx.stats.snapshot()["ams_sent"] == before
        # All first-round lookups must land before anyone republishes:
        # a fast rank republishing while a slow rank is still issuing
        # its first lookup_all would hand the slow rank "fresh" early.
        repro.barrier()
        # cached=False refetches the live slots.
        d.publish(("fresh", me))
        repro.barrier()
        assert d.lookup_all(cached=False) == \
            [("fresh", r) for r in range(repro.ranks())]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))
