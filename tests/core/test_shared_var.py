"""shared_var<T> semantics (paper §III-A)."""

import numpy as np
import pytest

import repro
from tests.conftest import run_spmd


def test_paper_example_read_write():
    """s = 1; int a = s;  — lvalue and rvalue uses."""
    def body():
        me = repro.myrank()
        s = repro.SharedVar(np.int64)
        if me == 0:
            s.value = 1
        repro.barrier()
        a = s.value
        assert a == 1
        repro.barrier()
        return int(a)

    assert run_spmd(body, ranks=4) == [1] * 4


def test_stored_on_owner_thread():
    def body():
        s = repro.SharedVar(np.int64, init=5, owner=1)
        assert s.where() == 1
        assert s.ptr.rank == 1
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_any_rank_can_write():
    def body():
        me = repro.myrank()
        s = repro.SharedVar(np.float64, init=0.0)
        repro.barrier()
        if me == repro.ranks() - 1:
            s.put(2.5)
        repro.barrier()
        return float(s.get())

    assert run_spmd(body, ranks=3) == [2.5] * 3


def test_multiple_vars_are_distinct():
    def body():
        a = repro.SharedVar(np.int64, init=1)
        b = repro.SharedVar(np.int64, init=2)
        assert a.ptr != b.ptr
        repro.barrier()
        return (int(a.value), int(b.value))

    assert run_spmd(body, ranks=2) == [(1, 2)] * 2


def test_atomic_counter_on_shared_var():
    def body():
        c = repro.SharedVar(np.int64, init=0)
        repro.barrier()
        for _ in range(25):
            c.atomic("add", 1)
        repro.barrier()
        return int(c.value)

    res = run_spmd(body, ranks=4)
    assert res == [100] * 4


def test_dtype_preserved():
    def body():
        s = repro.SharedVar(np.float32, init=1.5)
        repro.barrier()
        v = s.value
        assert v.dtype == np.float32
        return float(v)

    assert run_spmd(body, ranks=2) == [1.5, 1.5]
