"""Paper Table I, executable: every UPC idiom next to its UPC++
equivalent, both running on this runtime."""

import numpy as np

import repro
from repro.compat import upc
from tests.conftest import run_spmd


def test_number_of_execution_units():
    """UPC: THREADS            UPC++: THREADS or ranks()"""
    def body():
        assert upc.THREADS() == repro.ranks() == repro.THREADS()
        return True

    assert all(run_spmd(body, ranks=3))


def test_my_id():
    """UPC: MYTHREAD           UPC++: MYTHREAD or myrank()"""
    def body():
        assert upc.MYTHREAD() == repro.myrank() == repro.MYTHREAD()
        return True

    assert all(run_spmd(body, ranks=3))


def test_shared_variable():
    """UPC: shared Type v      UPC++: shared_var<Type> v"""
    def body():
        v = repro.SharedVar(np.int64, init=0)
        if repro.myrank() == 0:
            v.value = 7
        repro.barrier()
        assert v.value == 7
        return True

    assert all(run_spmd(body, ranks=2))


def test_shared_array():
    """UPC: shared [BS] Type A[size]
    UPC++: shared_array<Type, BS> A(size)"""
    def body():
        A_upc = upc.shared_array(np.int64, 8, block=2)
        A_upcxx = repro.SharedArray(np.int64, size=8, block=2)
        repro.barrier()
        # identical layouts
        assert all(A_upc.where(i) == A_upcxx.where(i) for i in range(8))
        return True

    assert all(run_spmd(body, ranks=2))


def test_global_pointer():
    """UPC: shared Type *p     UPC++: global_ptr<Type> p"""
    def body():
        A = repro.SharedArray(np.int64, size=4)
        repro.barrier()
        p = A.gptr(1)
        assert isinstance(p, repro.GlobalPtr)
        assert p.where() == A.where(1)
        return True

    assert all(run_spmd(body, ranks=2))


def test_memory_allocation():
    """UPC: upc_alloc(...)     UPC++: allocate<Type>(...)"""
    def body():
        a = upc.upc_alloc(32)
        b = repro.allocate(repro.myrank(), 32, np.uint8)
        assert a.where() == b.where() == repro.myrank()
        upc.upc_free(a)
        repro.deallocate(b)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_data_movement():
    """UPC: upc_memcpy(...)    UPC++: copy<Type>(...)"""
    def body():
        if repro.myrank() == 0:
            src = repro.allocate(0, 8, np.int64)
            d1 = repro.allocate(1, 8, np.int64)
            d2 = repro.allocate(1, 8, np.int64)
            src.put(np.arange(8))
            upc.upc_memcpy(d1.cast(np.uint8), src.cast(np.uint8), 64)
            repro.copy(src, d2, 8)
            assert np.array_equal(d1.get(8), d2.get(8))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_synchronization():
    """UPC: upc_barrier/upc_fence   UPC++: barrier()/fence()"""
    def body():
        upc.upc_barrier()
        repro.barrier()
        upc.upc_fence()
        repro.fence()
        return True

    assert all(run_spmd(body, ranks=2))


def test_forall_loop():
    """UPC:   upc_forall(...; affinity) { stmts; }
    UPC++: for(...) { if (affinity_cond) { stmts } }"""
    def body():
        n = 12
        A = repro.SharedArray(np.int64, size=n)
        repro.barrier()
        # UPC spelling through the veneer:
        upc_iters = list(upc.upc_forall(n, affinity=A))
        # UPC++ spelling — a plain loop with the affinity conditional:
        upcxx_iters = [
            i for i in range(n) if A.where(i) == repro.myrank()
        ]
        assert upc_iters == upcxx_iters
        return True

    assert all(run_spmd(body, ranks=3))
