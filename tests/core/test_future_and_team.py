"""Future/MultiFuture mechanics and Team structure."""

import pytest

import repro
from repro.core.future import Future, MultiFuture
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_future_double_completion_rejected():
    def body():
        if repro.myrank() == 0:
            ctx = repro.current_world().ranks[0]
            f = Future(ctx)
            f.set_result(1)
            with pytest.raises(PgasError):
                f.set_result(2)
            with pytest.raises(PgasError):
                f.set_exception(ValueError())
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_future_callback_after_completion_runs_immediately():
    def body():
        if repro.myrank() == 0:
            ctx = repro.current_world().ranks[0]
            f = Future(ctx)
            f.set_result(7)
            seen = []
            f.add_callback(lambda fut: seen.append("late"))
            assert seen == ["late"]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_future_exception_path():
    def body():
        if repro.myrank() == 0:
            ctx = repro.current_world().ranks[0]
            f = Future(ctx)
            f.set_exception(KeyError("nope"))
            assert f.done()
            with pytest.raises(KeyError):
                f.get()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_multifuture_aggregation():
    def body():
        if repro.myrank() == 0:
            ctx = repro.current_world().ranks[0]
            fs = [Future(ctx) for _ in range(3)]
            mf = MultiFuture(fs)
            assert not mf.done() and len(mf) == 3
            for i, f in enumerate(fs):
                f.set_result(i * 2)
            assert mf.done()
            assert mf.get() == [0, 2, 4]
            assert list(iter(mf)) == fs
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


# -- teams ------------------------------------------------------------------

def test_team_structure_queries():
    def body():
        t = repro.Team([3, 1, 2])
        assert len(t) == 3
        assert 1 in t and 0 not in t
        assert list(t) == [3, 1, 2]
        assert t.index_of(1) == 1
        assert t == repro.Team((3, 1, 2))
        assert t != repro.Team((1, 2, 3))
        assert hash(t) == hash(repro.Team([3, 1, 2]))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_team_validation():
    def body():
        with pytest.raises(PgasError):
            repro.Team([])
        with pytest.raises(PgasError):
            repro.Team([1, 1])
        t = repro.Team([0])
        with pytest.raises(PgasError):
            t.index_of(3)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_team_world_helper():
    def body():
        w = repro.Team.world()
        assert list(w) == list(range(repro.ranks()))
        return True

    assert all(run_spmd(body, ranks=3))


def test_split_nonmember_rejected():
    def body():
        me = repro.myrank()
        sub = repro.Team([0])
        if me != 0:
            with pytest.raises(PgasError):
                sub.split(0, 0)
        else:
            # a 1-member team splits into itself
            s = sub.split(0, 0)
            assert list(s) == [0]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_collective_state_does_not_leak():
    """Engine bookkeeping (state machines + early-message buffers) is
    reclaimed as collectives complete."""
    def body():
        from repro.core.world import current

        for _ in range(25):
            repro.barrier()
            repro.collectives.allreduce(1)
        repro.barrier()
        # allow messages buffered for the next collective some peers
        # already entered; nothing else may linger
        return current().coll.in_flight

    leftovers = run_spmd(body, ranks=4)
    # O(1) in-flight entries (traffic for the barriers/collectives peers
    # are currently inside), never O(iterations).
    assert all(n <= 2 for n in leftovers)
