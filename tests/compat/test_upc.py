"""UPC veneer: Table I idioms and UPC pointer-phase semantics."""

import numpy as np
import pytest

import repro
from repro.compat import upc
from repro.errors import BadPointer
from tests.conftest import run_spmd


def test_threads_mythread():
    def body():
        return (upc.MYTHREAD(), upc.THREADS())

    assert run_spmd(body, ranks=3) == [(r, 3) for r in range(3)]


def test_shared_array_declaration():
    """shared [BS] int A[size] -> upc.shared_array(int, size, BS)."""
    def body():
        A = upc.shared_array(np.int64, 12, block=3)
        assert A.block == 3 and len(A) == 12
        if upc.MYTHREAD() == 0:
            A[0] = 5
        upc.upc_barrier()
        return int(A[0])

    assert run_spmd(body, ranks=2) == [5, 5]


def test_upc_pointer_phase_walks_threads():
    """UPC pointer arithmetic hops threads; UPC++ pointers don't.  The
    paper's §III-B contrast, demonstrated side by side."""
    def body():
        A = upc.shared_array(np.int64, 12, block=2)
        upc.upc_barrier()
        p = upc.UpcSharedPtr(A, 0)
        threads = [(p + i).thread for i in range(8)]
        phases = [(p + i).phase for i in range(8)]
        n = repro.ranks()
        # block-cyclic walk: 2 elements on t0, 2 on t1, ... wrap
        assert threads == [(i // 2) % n for i in range(8)]
        assert phases == [i % 2 for i in range(8)]
        # the phase-less UPC++ pointer stays on its owner instead
        g = A.gptr(0)
        assert all((g + i).rank == g.rank for i in range(8))
        upc.upc_barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_pointer_deref_assign():
    def body():
        A = upc.shared_array(np.int64, 8)
        upc.upc_barrier()
        if upc.MYTHREAD() == 0:
            p = upc.UpcSharedPtr(A, 3)
            p.assign(77)
            assert p.deref() == 77
            p[1] = 78  # A[4]
        upc.upc_barrier()
        return (int(A[3]), int(A[4]))

    assert run_spmd(body, ranks=2) == [(77, 78)] * 2


def test_upc_pointer_difference():
    def body():
        A = upc.shared_array(np.int64, 8)
        B = upc.shared_array(np.int64, 8)
        p, q = upc.UpcSharedPtr(A, 6), upc.UpcSharedPtr(A, 2)
        assert p - q == 4
        assert (p - 2).index == 4
        with pytest.raises(BadPointer):
            _ = p - upc.UpcSharedPtr(B, 0)
        upc.upc_barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_cast_to_global_ptr_drops_phase():
    def body():
        A = upc.shared_array(np.int64, 8, block=2)
        upc.upc_barrier()
        p = upc.UpcSharedPtr(A, 2)
        g = p.to_global_ptr()
        assert g.rank == p.thread
        upc.upc_barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_alloc_and_free():
    def body():
        ptr = upc.upc_alloc(64)
        assert ptr.where() == upc.MYTHREAD()
        upc.upc_free(ptr)
        upc.upc_barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_all_alloc_layout():
    """upc_all_alloc(nblocks, nbytes): block b on thread b % THREADS."""
    def body():
        sa = upc.upc_all_alloc(6, 4)
        assert len(sa) == 24 and sa.block == 4
        n = repro.ranks()
        assert [sa.where(b * 4) for b in range(6)] == [b % n
                                                       for b in range(6)]
        upc.upc_barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_memget_memput():
    def body():
        me = upc.MYTHREAD()
        dst = None
        if me == 0:
            dst = repro.allocate(1, 16, np.uint8)
        dst = repro.collectives.bcast(dst, root=0)
        if me == 0:
            upc.upc_memput(dst, np.arange(16, dtype=np.uint8), 16)
        upc.upc_barrier()
        if me == 1:
            out = np.zeros(16, dtype=np.uint8)
            upc.upc_memget(out, dst, 16)
            assert np.array_equal(out, np.arange(16, dtype=np.uint8))
        upc.upc_barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_forall_integer_affinity_partitions_iterations():
    """Every iteration executed exactly once across threads."""
    def body():
        mine = list(upc.upc_forall(20, affinity=lambda i: i))
        assert all(i % repro.ranks() == repro.myrank() for i in mine)
        counts = repro.collectives.allreduce(len(mine))
        assert counts == 20
        all_mine = repro.collectives.allgather(mine)
        flat = sorted(i for sub in all_mine for i in sub)
        assert flat == list(range(20))
        return True

    assert all(run_spmd(body, ranks=4))


def test_upc_forall_shared_array_affinity():
    """Pointer-to-shared affinity: iterate where the data lives."""
    def body():
        A = upc.shared_array(np.int64, 17, block=2)
        upc.upc_barrier()
        mine = list(upc.upc_forall(17, affinity=A))
        assert all(A.where(i) == upc.MYTHREAD() for i in mine)
        total = repro.collectives.allreduce(len(mine))
        assert total == 17
        return True

    assert all(run_spmd(body, ranks=3))


def test_upc_forall_no_affinity_runs_everywhere():
    def body():
        assert list(upc.upc_forall(5)) == [0, 1, 2, 3, 4]
        return True

    assert all(run_spmd(body, ranks=2))


def test_upc_forall_bad_affinity():
    def body():
        with pytest.raises(TypeError):
            list(upc.upc_forall(5, affinity=3.14))
        return True

    assert all(run_spmd(body, ranks=1))


def test_upc_forall_constant_affinity():
    """UPC's constant integer affinity: one thread runs all iterations."""
    def body():
        mine = list(upc.upc_forall(6, affinity=1))
        if upc.MYTHREAD() == 1:
            assert mine == [0, 1, 2, 3, 4, 5]
        else:
            assert mine == []
        total = repro.collectives.allreduce(len(mine))
        assert total == 6
        return True

    assert all(run_spmd(body, ranks=3))
