"""Two-sided MPI-like layer: matching semantics, buffers, collectives."""

import numpy as np
import pytest

import repro
from repro.compat import mpi
from tests.conftest import run_spmd


def test_send_recv_object():
    def body():
        me = repro.myrank()
        if me == 0:
            mpi.send({"a": 7, "b": 3.14}, dest=1, tag=11)
        elif me == 1:
            data = mpi.recv(source=0, tag=11)
            assert data == {"a": 7, "b": 3.14}
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_isend_irecv_nonblocking():
    def body():
        me = repro.myrank()
        if me == 0:
            req = mpi.isend([1, 2, 3], dest=1, tag=5)
            req.wait()
        elif me == 1:
            req = mpi.irecv(source=0, tag=5)
            assert req.wait() == [1, 2, 3]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_tag_matching_is_selective():
    def body():
        me = repro.myrank()
        if me == 0:
            mpi.send("tag-1", dest=1, tag=1)
            mpi.send("tag-2", dest=1, tag=2)
        elif me == 1:
            # receive out of order by tag
            assert mpi.recv(source=0, tag=2) == "tag-2"
            assert mpi.recv(source=0, tag=1) == "tag-1"
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_fifo_order_within_same_tag():
    def body():
        me = repro.myrank()
        if me == 0:
            for i in range(5):
                mpi.send(i, dest=1, tag=0)
        elif me == 1:
            got = [mpi.recv(source=0, tag=0) for _ in range(5)]
            assert got == list(range(5))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_wildcards():
    def body():
        me = repro.myrank()
        if me in (1, 2):
            mpi.send(me, dest=0, tag=me * 10)
        if me == 0:
            a = mpi.recv(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG)
            b = mpi.recv(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG)
            assert sorted([a, b]) == [1, 2]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_request_source_and_tag_populated():
    def body():
        me = repro.myrank()
        if me == 0:
            req = mpi.irecv(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG)
            req.wait()
            assert req.source == 1 and req.tag == 42
        elif me == 1:
            mpi.send("x", dest=0, tag=42)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_buffer_send_recv_numpy():
    """Uppercase buffer fast path (the mpi4py idiom from the guides)."""
    def body():
        me = repro.myrank()
        if me == 0:
            mpi.Send(np.arange(100, dtype=np.float64), dest=1, tag=7)
        elif me == 1:
            buf = np.empty(100, dtype=np.float64)
            mpi.Recv(buf, source=0, tag=7)
            assert np.array_equal(buf, np.arange(100.0))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_irecv_buffer_filled_at_wait():
    def body():
        me = repro.myrank()
        if me == 1:
            buf = np.zeros(8, dtype=np.int64)
            req = mpi.Irecv(buf, source=0, tag=3)
            repro.barrier()  # let the send happen
            out = req.wait()
            assert out is buf
            assert np.array_equal(buf, np.arange(8))
        else:
            if me == 0:
                mpi.Send(np.arange(8, dtype=np.int64), dest=1, tag=3)
            repro.barrier()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_sendrecv_ring_shift():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        got = mpi.sendrecv(me, dest=(me + 1) % n, source=(me - 1) % n)
        assert got == (me - 1) % n
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_waitall():
    def body():
        me = repro.myrank()
        n = repro.ranks()
        if me == 0:
            reqs = [mpi.irecv(source=s, tag=0) for s in range(1, n)]
            values = mpi.waitall(reqs)
            assert sorted(values) == list(range(1, n))
        else:
            mpi.send(me, dest=0, tag=0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_comm_world_facade():
    def body():
        comm = mpi.COMM_WORLD
        assert comm.Get_size() == repro.ranks()
        assert comm.Get_rank() == repro.myrank()
        total = comm.allreduce(comm.Get_rank())
        comm.Barrier()
        data = comm.bcast({"k": 1} if comm.Get_rank() == 0 else None)
        assert data == {"k": 1}
        return total

    assert run_spmd(body, ranks=3) == [3, 3, 3]


def test_unexpected_messages_buffered():
    """Sends arriving before the recv is posted are not lost."""
    def body():
        me = repro.myrank()
        if me == 0:
            mpi.send("early", dest=1, tag=9)
        repro.barrier()  # message is already at rank 1
        if me == 1:
            assert mpi.recv(source=0, tag=9) == "early"
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_mpi4py_style_pi_pattern():
    """The classic compute-pi reduction, mpi4py tutorial shape."""
    def body():
        comm = mpi.COMM_WORLD
        n, rank, size = 128, comm.Get_rank(), comm.Get_size()
        h = 1.0 / n
        s = sum(
            4.0 / (1.0 + ((i + 0.5) * h) ** 2)
            for i in range(rank, n, size)
        )
        pi = comm.allreduce(s * h)
        assert abs(pi - 3.14159265) < 1e-3
        return True

    assert all(run_spmd(body, ranks=4))


def test_iprobe_and_probe():
    def body():
        me = repro.myrank()
        if me == 0:
            assert not mpi.iprobe()        # nothing yet
            repro.barrier()
            mpi.probe(source=1, tag=5)     # blocks until arrival
            assert mpi.iprobe(source=1, tag=5)
            assert not mpi.iprobe(tag=99)  # wrong tag: no match
            assert mpi.recv(source=1, tag=5) == "ping"
            assert not mpi.iprobe()        # consumed
        else:
            repro.barrier()
            mpi.send("ping", dest=0, tag=5)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_probe_does_not_consume():
    def body():
        me = repro.myrank()
        if me == 1:
            mpi.send(123, dest=0, tag=1)
        repro.barrier()
        if me == 0:
            mpi.probe(source=1, tag=1)
            mpi.probe(source=1, tag=1)  # still there
            assert mpi.recv(source=1, tag=1) == 123
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_request_test_polls_progress():
    def body():
        me = repro.myrank()
        if me == 0:
            req = mpi.irecv(source=1, tag=4)
            assert not req.test()
            repro.barrier()          # rank 1 sends after this
            while not req.test():
                pass                 # test() drives progress itself
            assert req.wait() == "late"
        else:
            repro.barrier()
            mpi.send("late", dest=0, tag=4)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
