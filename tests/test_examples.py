"""Every example script must stay runnable (the quickstart contract).

Fast examples run outright; the slower renders/solvers are smoke-tested
through their underlying library entry points elsewhere
(tests/bench/*) and only import-checked here.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "task_dag.py",
    "table1_idioms.py",
    "titanium_arrays.py",
    "distributed_sort.py",
    "periodic_advection.py",
    "kv_store.py",
]

SLOW = [
    "heat_diffusion.py",
    "render_scene.py",
    "conjugate_gradient.py",
]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180,
        cwd=str(EXAMPLES.parent),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]


@pytest.mark.parametrize("script", FAST + SLOW)
def test_example_compiles(script):
    src = (EXAMPLES / script).read_text()
    compile(src, script, "exec")


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
