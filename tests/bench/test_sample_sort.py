"""Sample Sort: sortedness, permutation conservation, variants."""

import pytest

from repro.bench import sample_sort


@pytest.mark.parametrize("variant", ["upcxx", "upc"])
def test_sorts_and_conserves(variant):
    r = sample_sort.run(ranks=4, keys_per_rank=1024, variant=variant)
    assert r.verified
    assert r.total_keys == 4096


def test_single_rank():
    r = sample_sort.run(ranks=1, keys_per_rank=512)
    assert r.verified


@pytest.mark.parametrize("ranks", [2, 3, 5])
def test_odd_rank_counts(ranks):
    r = sample_sort.run(ranks=ranks, keys_per_rank=700)
    assert r.verified


def test_skew_is_bounded_with_oversampling():
    """Splitter sampling keeps the worst rank within a reasonable
    multiple of the average (the point of sample sort)."""
    r = sample_sort.run(ranks=4, keys_per_rank=4096)
    assert r.verified
    assert r.max_skew < 2.0


def test_tiny_inputs():
    r = sample_sort.run(ranks=4, keys_per_rank=8)
    assert r.verified


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        sample_sort.run(ranks=2, keys_per_rank=64, variant="bitonic")


def test_throughput_metric():
    r = sample_sort.run(ranks=2, keys_per_rank=2048)
    assert r.tb_per_min > 0
