"""Stencil benchmark: distributed Jacobi vs serial NumPy oracle."""

import numpy as np
import pytest

from repro.bench import stencil


def test_serial_reference_basics():
    grid = np.zeros((4, 4, 4))
    grid[2, 2, 2] = 1.0
    out = stencil.serial_reference(grid, 1)
    # center gets c*1, face neighbours get +1 each
    assert out[2, 2, 2] == stencil.STENCIL_C
    assert out[1, 2, 2] == 1.0 and out[2, 2, 3] == 1.0
    assert out[1, 1, 2] == 0.0  # diagonal untouched (7-point)


@pytest.mark.parametrize("ranks", [1, 2, 4, 8])
def test_distributed_matches_serial(ranks):
    r = stencil.run(ranks=ranks, box=6, iters=2)
    assert r.verified


def test_multiple_iterations():
    r = stencil.run(ranks=4, box=5, iters=4)
    assert r.verified


def test_foreach_kernel_agrees_with_vectorized():
    """The paper's foreach3 loop and the NumPy views compute the same
    field (tiny box: foreach is Python-speed)."""
    r = stencil.run(ranks=2, box=4, iters=2, kernel="foreach")
    assert r.verified


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        stencil.run(ranks=1, box=4, iters=1, kernel="simd")


def test_ghost_message_pattern():
    """Each ghost exchange is one-sided: 2 AMs (pack request + unpack)
    per face per iteration, faces only."""
    r = stencil.run(ranks=8, box=4, iters=2)
    # 2x2x2 grid: every rank has exactly 3 face neighbours; each face
    # copy from a remote source costs a pack AM; replies are not
    # counted as sends by the initiator.
    assert r.verified
    assert r.messages_per_rank_iter > 0


def test_gflops_reported():
    r = stencil.run(ranks=2, box=5, iters=2)
    assert r.gflops > 0
    assert r.box == 5 and r.iters == 2
