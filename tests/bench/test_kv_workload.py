"""KV workload benchmark: smoke run + the batching acceptance gate."""

import json

from repro.bench import kv_workload
from repro.bench.harness import export_kv


def test_smoke_and_acceptance(tmp_path):
    r = kv_workload.run(ranks=4, keys=512, ops_per_rank=200,
                        multi_every=8, multi_batch=32,
                        microbench_keys=1000)
    assert r.verified
    # The batching contract: 1k keys at 4 ranks coalesce into at most
    # nranks request AMs, >= 5x faster than the per-key loop.
    assert r.ams_per_multi <= r.ranks
    assert r.multi_speedup >= 5.0, r.multi_speedup
    assert r.coalescing_ratio > 1.0
    assert 0.0 <= r.cache_hit_rate <= 1.0
    assert r.get_p99_us >= r.get_p50_us > 0.0
    assert r.ops_per_sec > 0
    # kv traffic visible in the aggregated CommStats
    assert r.stats["kv_gets"] > 0
    assert r.stats["kv_multi_ops"] > 0
    assert r.stats["kv_batched_keys"] >= r.stats["kv_multi_ops"]


def test_export_kv_writes_json(tmp_path, capsys):
    path = tmp_path / "BENCH.json"
    out = export_kv(str(path), ranks=2)
    data = json.loads(path.read_text())
    assert data == json.loads(json.dumps(out))
    for field in ("get_p50_us", "get_p99_us", "put_p50_us", "put_p99_us",
                  "coalescing_ratio", "cache_hit_rate", "ams_per_multi",
                  "multi_speedup", "verified"):
        assert field in data
    assert data["verified"] is True
    assert "wrote" in capsys.readouterr().out
