"""Mini-LULESH: physics sanity, serial equality, one-sided == two-sided."""

import numpy as np
import pytest

from repro.bench import lulesh
from repro.bench.lulesh import (
    FIELDS,
    lxf_step,
    max_wavespeed,
    sedov_init,
    serial_reference,
)


def test_sedov_init_structure():
    U = sedov_init((8, 8, 8), dx=1.0)
    assert U["rho"].sum() == pytest.approx(512.0)
    assert U["E"].argmax() == np.ravel_multi_index((4, 4, 4), (8, 8, 8))
    assert np.all(U["mx"] == 0)


def test_wavespeed_positive_and_peaked_at_blast():
    U = sedov_init((8, 8, 8), dx=1.0)
    pad = {k: np.pad(v, 1, mode="edge") for k, v in U.items()}
    assert max_wavespeed(pad) > np.sqrt(1.4 * 0.4 * 1e-3)


def test_lxf_step_conserves_mass_interior():
    """With edge ghosts and the blast far from boundaries, total mass
    drift over one step is tiny."""
    U = sedov_init((10, 10, 10), dx=1.0)
    pad = {k: np.pad(v, 1, mode="edge") for k, v in U.items()}
    dt = 0.3 / max_wavespeed(pad)
    out = lxf_step(pad, dt, 1.0)
    assert out["rho"].sum() == pytest.approx(1000.0, rel=1e-6)


def test_blast_expands_symmetrically():
    ref = serial_reference((9, 9, 9), steps=3)
    e = ref["E"]
    c = 4
    # octant symmetry of the Sedov blast on a symmetric grid
    assert e[c + 2, c, c] == pytest.approx(e[c - 2, c, c], rel=1e-12)
    assert e[c, c + 2, c] == pytest.approx(e[c, c, c + 2], rel=1e-12)
    # momentum points outward: positive x-momentum on +x side
    assert ref["mx"][c + 1, c, c] > 0
    assert ref["mx"][c - 1, c, c] < 0


@pytest.mark.parametrize("comm", ["one-sided", "two-sided"])
def test_distributed_matches_serial(comm):
    r = lulesh.run(ranks=8, box=4, steps=2, comm=comm)
    assert r.verified
    assert r.comm == comm


def test_one_rank_cube():
    r = lulesh.run(ranks=1, box=6, steps=2)
    assert r.verified


def test_conservation_drift_small():
    r = lulesh.run(ranks=8, box=4, steps=3, verify=False)
    assert r.mass_drift < 1e-6
    assert r.energy_drift < 1e-6


def test_non_cube_rank_count_rejected():
    with pytest.raises(ValueError, match="perfect-cube"):
        lulesh.run(ranks=6, box=4, steps=1)


def test_one_sided_and_two_sided_agree_exactly():
    """Both communication modes must produce identical physics — the
    LULESH port's core claim (same algorithm, different transport)."""
    r1 = lulesh.run(ranks=8, box=4, steps=3, comm="one-sided")
    r2 = lulesh.run(ranks=8, box=4, steps=3, comm="two-sided")
    # both verified against the same serial oracle => identical fields
    assert r1.verified and r2.verified


def test_fom_metric():
    r = lulesh.run(ranks=1, box=5, steps=1, verify=False)
    assert r.fom_zones_per_sec > 0


def test_two_sided_message_counts():
    """Each two-sided exchange sends exactly one message per neighbour
    (7 on a 2x2x2 grid) per rank, plus the exchange's closing barrier
    (ceil(log2 8) = 3 dissemination AMs now that collectives ride the
    conduit)."""
    import repro
    from repro.arrays import DistNdArray, RectDomain
    from repro.bench.lulesh import _exchange_two_sided
    from tests.conftest import run_spmd

    def body():
        me = repro.myrank()
        dists = [
            DistNdArray(np.float64, RectDomain((0, 0, 0), (8, 8, 8)),
                        ghost=1, pgrid=(2, 2, 2))
            for _ in range(2)
        ]
        repro.barrier()
        stats0 = repro.current_world().ranks[me].stats.snapshot()
        _exchange_two_sided(dists)
        stats1 = repro.current_world().ranks[me].stats.snapshot()
        sent = stats1["ams_sent"] - stats0["ams_sent"]
        coll = stats1["coll_msgs"] - stats0["coll_msgs"]
        # 7 neighbour messages + 3 barrier AMs; nothing else
        assert coll == 3, coll
        assert sent - coll == 7, (sent, coll)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=8))
