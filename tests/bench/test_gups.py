"""Random Access benchmark: HPCC stream, verification, variants."""

import numpy as np
import pytest

from repro.bench import gups


def test_hpcc_stream_matches_reference_recurrence():
    out = gups.hpcc_stream(1, 6)
    ran = 1
    expect = []
    for _ in range(6):
        ran = ((ran << 1) & ((1 << 64) - 1)) ^ (
            gups.POLY if ran & (1 << 63) else 0
        )
        expect.append(ran)
    assert list(out) == expect


def test_hpcc_stream_is_deterministic():
    a = gups.hpcc_stream(12345, 100)
    b = gups.hpcc_stream(12345, 100)
    assert np.array_equal(a, b)


def test_hpcc_starts_jump():
    assert gups.hpcc_starts(0) == 1
    s3 = gups.hpcc_starts(3)
    assert gups.hpcc_stream(1, 3)[-1] == s3


def test_streams_differ_per_start():
    assert not np.array_equal(gups.hpcc_stream(1, 50),
                              gups.hpcc_stream(2, 50))


@pytest.mark.parametrize("variant", ["upcxx", "upc"])
def test_random_access_verifies(variant):
    r = gups.run(ranks=4, log2_table_size=9, updates_per_rank=64,
                 variant=variant)
    assert r.verified
    assert r.updates == 4 * 64
    assert r.table_size == 512
    assert r.seconds > 0


def test_remote_fraction_reflects_distribution():
    """With a cyclic table over 4 ranks, ~3/4 of updates are remote."""
    r = gups.run(ranks=4, log2_table_size=10, updates_per_rank=256)
    assert 0.55 < r.remote_fraction < 0.95


def test_single_rank_all_local():
    r = gups.run(ranks=1, log2_table_size=8, updates_per_rank=64)
    assert r.verified
    assert r.remote_fraction == 0.0


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        gups.run(ranks=2, updates_per_rank=8, variant="chapel")


def test_gups_metric_positive():
    r = gups.run(ranks=2, log2_table_size=8, updates_per_rank=32)
    assert r.gups > 0
