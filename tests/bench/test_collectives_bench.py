"""The collectives microbenchmark: runs end to end at reduced size and
its op-count acceptance bounds hold on real traffic."""

import numpy as np

import repro
from repro.bench import collectives as collbench
from tests.conftest import run_spmd


def test_microbench_runs_and_bounds_hold():
    r = collbench.run(ranks=4, iters=4, payloads=(8, 512),
                      keys_per_rank=512)
    assert r.ranks == 4 and r.log2_ranks == 2
    assert r.bounds_ok, r.bounds
    # exact AM counts, not just bounds: dissemination and Bruck both
    # send ceil(log2 P) per rank, pairwise sends P-1
    assert r.barrier["coll_ams_per_rank"] == 2
    for row in r.allgather.values():
        assert row["coll_ams_per_rank"] == 2
    for row in r.alltoallv.values():
        assert row["coll_ams_per_rank"] == 3
    assert set(r.allgather) == {"8", "512"}
    assert all(row["us"] > 0 for row in r.centralized.values())
    assert r.sample_sort_phases["verified"] is True
    assert "sort:redistribute" in r.sample_sort_phases


def test_centralized_baseline_matches_allgather():
    """The re-created rendezvous baseline must still produce correct
    allgather results (it is a *measured* baseline, not a strawman)."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        outs = []
        for i in range(3):
            outs.append(collbench._centralized_exchange((me, i), seq=i))
        repro.barrier()
        assert all(out == [(r, i) for r in range(n)]
                   for i, out in enumerate(outs))
        return True

    assert all(run_spmd(body, ranks=4))


def test_export_collectives_writes_bench5(tmp_path):
    from repro.bench.harness import export_collectives

    path = tmp_path / "BENCH_5.json"
    out = export_collectives(str(path), ranks=2, iters=4)
    assert path.exists()
    assert out["bounds_ok"] is True
    assert out["barrier"]["coll_ams_per_rank"] == 1  # ceil(log2 2)
