"""The figure/table harness end to end."""

import pytest

from repro.bench import harness


def test_every_artifact_prints(capsys):
    assert harness.main([]) == 0
    out = capsys.readouterr().out
    for marker in ("Table III", "Table IV", "Fig. 1", "Fig. 4", "Fig. 5",
                   "Fig. 6", "Fig. 7", "Fig. 8"):
        assert marker in out


def test_artifact_subset(capsys):
    assert harness.main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out and "Table IV" not in out


def test_unknown_artifact_rejected(capsys):
    assert harness.main(["fig99"]) == 2


def test_validate_small():
    """The real-execution validation pass: every benchmark's oracle."""
    results = harness.validate(ranks=4)
    assert results and all(results.values()), results


def test_charts_render(capsys):
    assert harness.main(["fig4", "fig8", "--charts"]) == 0
    out = capsys.readouterr().out
    assert "log10 y" in out
    assert "o=mpi" in out and "x=upcxx" in out


def test_ascii_chart_shapes():
    chart = harness.ascii_chart(
        [1, 10, 100], {"a": [1.0, 10.0, 100.0], "b": [2.0, 20.0, 200.0]},
        title="t", height=5,
    )
    lines = chart.splitlines()
    assert lines[0].strip() == "t"
    assert len(lines) == 5 + 3  # title + rows + axis + legend
    assert "o=a" in lines[-1] and "x=b" in lines[-1]


def test_ascii_chart_empty():
    assert harness.ascii_chart([1], {"a": [0.0]}) == "(no data)"


def test_fig3_artifact(capsys):
    assert harness.main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "local access branch" in out
    assert "remote access branch" in out
    assert "0 conduit ops" in out and "1 conduit op" in out
