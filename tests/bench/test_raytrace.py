"""Distributed renderer: bit-identical to the serial oracle."""

import numpy as np
import pytest

from repro.bench import raytrace
from repro.bench.raytrace import Scene, render_serial, render_tile


def test_render_tile_deterministic():
    s = Scene()
    a = render_tile(s, 32, 8, 1, 2, spp=2)
    b = render_tile(s, 32, 8, 1, 2, spp=2)
    assert np.array_equal(a, b)
    assert a.shape == (8, 8, 3)
    assert a.min() >= 0.0 and a.max() <= 1.0


def test_tiles_independent_of_who_renders():
    """Per-pixel seeding: a tile's pixels don't depend on tile order."""
    s = Scene()
    full = render_serial(s, 16, 8, spp=1)
    t = render_tile(s, 16, 8, 1, 0, spp=1)
    assert np.array_equal(full[8:16, 0:8], t)


def test_image_has_structure():
    """Sanity: scene visible (not a constant image), shadows darken."""
    s = Scene()
    img = render_serial(s, 32, 8, spp=1)
    assert img.std() > 0.05


@pytest.mark.parametrize("ranks", [1, 2, 4, 5])
def test_distributed_equals_serial(ranks):
    r = raytrace.run(ranks=ranks, image=24, tile=8, spp=1)
    assert r.verified


def test_cyclic_distribution_counts():
    r = raytrace.run(ranks=3, image=32, tile=8, spp=1)
    # 16 tiles over 3 ranks cyclically: rank 0 renders ceil(16/3)=6
    assert r.tiles_rendered == 6
    assert r.verified


def test_supersampling_changes_image():
    s = Scene()
    a = render_serial(s, 16, 8, spp=1)
    b = render_serial(s, 16, 8, spp=4)
    assert not np.array_equal(a, b)


# -- the §V-D future-work extensions -----------------------------------------

def test_dynamic_render_equals_serial_under_full_skew():
    """Work-stealing + one-sided tile delivery: all tiles seeded on
    rank 0, output must still be bit-identical to the serial render."""
    res = raytrace.run_dynamic(ranks=4, image=32, tile=8, spp=1,
                               skew=True)
    assert all(r["verified"] for r in res)
    assert res[0]["total_rendered"] == 16


def test_dynamic_render_actually_steals():
    res = raytrace.run_dynamic(ranks=4, image=64, tile=8, spp=1,
                               skew=True)
    assert all(r["verified"] for r in res)
    assert sum(r["steals"] for r in res) > 0
    # rank 0 no longer renders everything
    assert res[0]["rendered"] < res[0]["total_rendered"]


def test_dynamic_render_balanced_seed():
    res = raytrace.run_dynamic(ranks=4, image=32, tile=8, spp=1,
                               skew=False)
    assert all(r["verified"] for r in res)
    assert res[0]["total_rendered"] == 16
