"""Utility helpers: timers and deterministic RNG seeding."""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util import Timer, mt_seed_for_rank, splitmix64


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert 0.005 < t.elapsed < 1.0


def test_timer_lap():
    with Timer() as t:
        first = t.lap()
        second = t.lap()
    assert second >= first >= 0.0


def test_splitmix_deterministic_and_64bit():
    assert splitmix64(42) == splitmix64(42)
    assert 0 <= splitmix64(42) < (1 << 64)
    assert splitmix64(42) != splitmix64(43)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 64) - 1))
def test_splitmix_stays_in_range(x):
    assert 0 <= splitmix64(x) < (1 << 64)


def test_splitmix_avalanche():
    """Single-bit input changes flip ~half the output bits."""
    flips = bin(splitmix64(1234) ^ splitmix64(1235)).count("1")
    assert 16 < flips < 48


def test_rank_generators_are_decorrelated():
    a = mt_seed_for_rank(7, 0).integers(0, 1 << 62, 100)
    b = mt_seed_for_rank(7, 1).integers(0, 1 << 62, 100)
    assert not np.array_equal(a, b)


def test_rank_generators_reproducible():
    a = mt_seed_for_rank(7, 3).integers(0, 1 << 62, 50)
    b = mt_seed_for_rank(7, 3).integers(0, 1 << 62, 50)
    assert np.array_equal(a, b)


def test_mt_family():
    g = mt_seed_for_rank(1, 0)
    assert isinstance(g.bit_generator, np.random.MT19937)
