"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_everything_derives_from_pgas_error():
    for name in ("NotInSpmdRegion", "PeerFailure", "SegmentOutOfMemory",
                 "BadPointer", "CommTimeout", "SerializationError",
                 "DomainError"):
        assert issubclass(getattr(errors, name), errors.PgasError)


def test_peer_failure_carries_context():
    original = ValueError("boom")
    pf = errors.PeerFailure(3, original)
    assert pf.failed_rank == 3
    assert pf.original is original
    assert "rank 3" in str(pf) and "boom" in str(pf)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.PgasError):
        raise errors.BadPointer("x")
    with pytest.raises(errors.PgasError):
        raise errors.CommTimeout("y")


def test_pgas_errors_are_not_swallowed_as_system_errors():
    assert not issubclass(errors.PgasError, (OSError, RuntimeError))
