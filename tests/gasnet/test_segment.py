"""Segment allocator and raw-access tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BadPointer, SegmentOutOfMemory
from repro.gasnet.segment import Segment, _align_up


def test_alloc_returns_aligned_offsets():
    seg = Segment(4096)
    for align in (1, 2, 4, 8, 16, 64):
        off = seg.alloc(10, align=align)
        assert off % align == 0


def test_align_up():
    assert _align_up(0, 8) == 0
    assert _align_up(1, 8) == 8
    assert _align_up(8, 8) == 8
    assert _align_up(9, 4) == 12


def test_alloc_free_reuses_space():
    seg = Segment(128)
    a = seg.alloc(64)
    with pytest.raises(SegmentOutOfMemory):
        seg.alloc(128)
    seg.free(a)
    b = seg.alloc(128)  # full segment usable again after coalescing
    assert b == 0


def test_out_of_memory_raises():
    seg = Segment(64)
    with pytest.raises(SegmentOutOfMemory):
        seg.alloc(65)


def test_zero_byte_alloc_is_legal_and_freeable():
    seg = Segment(64)
    a = seg.alloc(0)
    b = seg.alloc(0)
    assert a != b  # distinct reservations
    seg.free(a)
    seg.free(b)
    assert seg.bytes_in_use == 0


def test_double_free_raises():
    seg = Segment(64)
    a = seg.alloc(8)
    seg.free(a)
    with pytest.raises(BadPointer):
        seg.free(a)


def test_free_of_unallocated_offset_raises():
    seg = Segment(64)
    with pytest.raises(BadPointer):
        seg.free(12)


def test_negative_alloc_and_bad_align_raise():
    seg = Segment(64)
    with pytest.raises(ValueError):
        seg.alloc(-1)
    with pytest.raises(ValueError):
        seg.alloc(8, align=3)
    with pytest.raises(ValueError):
        seg.alloc(8, align=0)


def test_coalescing_merges_adjacent_holes():
    seg = Segment(96)
    a = seg.alloc(32)
    b = seg.alloc(32)
    c = seg.alloc(32)
    seg.free(a)
    seg.free(c)
    assert len(list(seg.holes())) == 2
    seg.free(b)  # middle free merges all three
    assert list(seg.holes()) == [(0, 96)]


def test_typed_read_write_roundtrip():
    seg = Segment(1024)
    off = seg.alloc(64, align=8)
    data = np.arange(8, dtype=np.float64)
    seg.typed_write(off, data)
    out = seg.typed_read(off, np.float64, 8)
    assert np.array_equal(out, data)
    # reads are copies
    out[:] = 0
    assert np.array_equal(seg.typed_read(off, np.float64, 8), data)


def test_view_is_zero_copy_and_checks_alignment():
    seg = Segment(128)
    off = seg.alloc(32, align=8)
    v = seg.view(off, np.int32, 8)
    v[:] = 7
    assert np.all(seg.typed_read(off, np.int32, 8) == 7)
    with pytest.raises(BadPointer):
        seg.view(off + 1, np.int32, 1)  # misaligned


def test_range_checks():
    seg = Segment(64)
    with pytest.raises(BadPointer):
        seg.read(60, 8)
    with pytest.raises(BadPointer):
        seg.write(-1, np.zeros(4, dtype=np.uint8))
    with pytest.raises(BadPointer):
        seg.typed_read(0, np.float64, 9)


def test_atomic_update_returns_old_value():
    seg = Segment(64)
    off = seg.alloc(8, align=8)
    seg.typed_write(off, np.array([5], dtype=np.int64))
    old = seg.atomic_update(off, np.int64, lambda o, v: o ^ v, 3)
    assert old == 5
    assert seg.typed_read(off, np.int64, 1)[0] == 6


def test_peak_and_live_counters():
    seg = Segment(256)
    a = seg.alloc(64)
    b = seg.alloc(64)
    assert seg.bytes_in_use == 128
    assert seg.n_live_allocations == 2
    seg.free(a)
    assert seg.bytes_in_use == 64
    assert seg.peak_bytes_in_use == 128
    seg.free(b)


def test_allocation_size_query():
    seg = Segment(128)
    a = seg.alloc(24)
    assert seg.allocation_size(a) == 24
    with pytest.raises(BadPointer):
        seg.allocation_size(a + 1)


@settings(max_examples=200, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 200), st.sampled_from([1, 2, 4, 8, 16])),
    min_size=1, max_size=40,
))
def test_allocator_invariants(requests):
    """Property: live allocations never overlap, all stay in bounds, and
    freeing everything restores one maximal hole."""
    seg = Segment(8192)
    live: dict[int, int] = {}
    for nbytes, align in requests:
        try:
            off = seg.alloc(nbytes, align=align)
        except SegmentOutOfMemory:
            continue
        assert off % align == 0
        assert 0 <= off and off + nbytes <= seg.size
        for o, n in live.items():
            assert off + max(nbytes, 1) <= o or o + n <= off, \
                "overlapping allocations"
        live[off] = max(nbytes, 1)
    for off in list(live):
        seg.free(off)
    assert list(seg.holes()) == [(0, seg.size)]
    assert seg.bytes_in_use == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(st.booleans(), st.integers(1, 300),
              st.sampled_from([1, 4, 8])),
    min_size=1, max_size=60,
))
def test_allocator_interleaved_alloc_free(script):
    """Property: random interleavings of alloc and free keep the
    no-overlap/bounds invariants and fully coalesce at the end."""
    seg = Segment(16384)
    live: list[tuple[int, int]] = []
    for do_free, nbytes, align in script:
        if do_free and live:
            off, _n = live.pop(len(live) // 2)
            seg.free(off)
            continue
        try:
            off = seg.alloc(nbytes, align=align)
        except SegmentOutOfMemory:
            continue
        for o, n in live:
            assert off + max(nbytes, 1) <= o or o + n <= off
        live.append((off, max(nbytes, 1)))
    for off, _n in live:
        seg.free(off)
    assert list(seg.holes()) == [(0, seg.size)]
    assert seg.n_live_allocations == 0
