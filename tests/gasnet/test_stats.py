"""CommStats counter tests."""

from repro.gasnet.stats import CommStats, aggregate


def test_counters_accumulate():
    s = CommStats()
    s.record_put(100)
    s.record_put(50)
    s.record_get(8)
    s.record_atomic()
    s.record_am(40)
    s.record_am_handled()
    s.record_reply()
    s.record_barrier()
    s.record_collective()
    s.record_local()
    snap = s.snapshot()
    assert snap["puts"] == 2 and snap["put_bytes"] == 150
    assert snap["gets"] == 1 and snap["get_bytes"] == 8
    assert snap["atomics"] == 1
    assert snap["ams_sent"] == 1 and snap["am_bytes"] == 40
    assert snap["local_accesses"] == 1
    assert snap["remote_accesses"] == 4  # puts + gets + atomics


def test_derived_properties():
    s = CommStats()
    s.record_put(10)
    s.record_get(20)
    s.record_am(30)
    assert s.messages == 3
    assert s.bytes_moved == 60


def test_reset():
    s = CommStats()
    s.record_put(10)
    s.reset()
    assert s.snapshot()["puts"] == 0
    assert s.messages == 0


def test_aggregate():
    a, b = CommStats(), CommStats()
    a.record_put(1)
    b.record_put(2)
    b.record_get(4)
    total = aggregate([a, b])
    assert total["puts"] == 2
    assert total["put_bytes"] == 3
    assert total["gets"] == 1


def test_chaos_reorders_counted_snapshot_reset_aggregate():
    s = CommStats()
    s.record_chaos_reorder()
    s.record_chaos_reorder()
    s.record_chaos_drop()
    assert s.snapshot()["chaos_reorders"] == 2
    t = CommStats()
    t.record_chaos_reorder()
    assert aggregate([s, t])["chaos_reorders"] == 3
    s.reset()
    assert s.snapshot()["chaos_reorders"] == 0
    assert s.snapshot()["chaos_drops"] == 0


def test_derived_properties_consistent_under_concurrent_updates():
    """messages/bytes_moved/coalescing_ratio read several counters; they
    must come from one locked snapshot, never a torn multi-field read
    (e.g. a put counted in ``puts`` but not yet in ``put_bytes``)."""
    import threading

    s = CommStats()
    stop = threading.Event()
    torn = []

    def writer():
        while not stop.is_set():
            s.record_put_indexed(4, 32)

    def reader():
        while not stop.is_set():
            snap = s.snapshot()
            # Invariants that hold in every consistent state:
            if snap["put_bytes"] != 8 * snap["batched_elements"]:
                torn.append(snap)
            if s.batched_ops and s.coalescing_ratio != 4.0:
                torn.append("ratio")

    threads = [threading.Thread(target=writer) for _ in range(2)] + \
              [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    import time

    time.sleep(0.2)
    stop.set()
    for t in threads:
        t.join()
    assert not torn
    assert s.messages == s.batched_ops == s.snapshot()["puts_indexed"]
    assert s.coalescing_ratio == 4.0


def test_kv_counters_snapshot_reset_aggregate():
    s = CommStats()
    s.record_kv_get()
    s.record_kv_get(5)
    s.record_kv_put(2)
    s.record_kv_delete()
    s.record_kv_update()
    s.record_kv_multi(ams=3, nkeys=60)
    s.record_kv_cache(True)
    s.record_kv_cache(True)
    s.record_kv_cache(False)
    snap = s.snapshot()
    assert snap["kv_gets"] == 6
    assert snap["kv_puts"] == 2
    assert snap["kv_deletes"] == 1
    assert snap["kv_updates"] == 1
    assert snap["kv_multi_ops"] == 3 and snap["kv_batched_keys"] == 60
    assert snap["kv_cache_hits"] == 2 and snap["kv_cache_misses"] == 1
    assert s.kv_cache_hit_rate == 2 / 3
    t = CommStats()
    t.record_kv_multi(ams=1, nkeys=10)
    assert aggregate([s, t])["kv_batched_keys"] == 70
    s.reset()
    assert all(v == 0 for k, v in s.snapshot().items()
               if k.startswith("kv_"))
    assert s.kv_cache_hit_rate == 0.0


def test_coalescing_ratio_covers_kv_traffic():
    # RMA-only traffic: ratio unchanged from the PR 1 definition.
    s = CommStats()
    s.record_put_indexed(20, 160)
    assert s.coalescing_ratio == 20.0
    # Container multi-ops fold into the same elements-per-batched-op.
    s.record_kv_multi(ams=3, nkeys=40)
    assert s.coalescing_ratio == (20 + 40) / (1 + 3)
    # KV-only traffic works too (no indexed RMA issued at all).
    t = CommStats()
    t.record_kv_multi(ams=2, nkeys=30)
    assert t.coalescing_ratio == 15.0
    assert CommStats().coalescing_ratio == 0.0
