"""CommStats counter tests."""

from repro.gasnet.stats import CommStats, aggregate


def test_counters_accumulate():
    s = CommStats()
    s.record_put(100)
    s.record_put(50)
    s.record_get(8)
    s.record_atomic()
    s.record_am(40)
    s.record_am_handled()
    s.record_reply()
    s.record_barrier()
    s.record_collective()
    s.record_local()
    snap = s.snapshot()
    assert snap["puts"] == 2 and snap["put_bytes"] == 150
    assert snap["gets"] == 1 and snap["get_bytes"] == 8
    assert snap["atomics"] == 1
    assert snap["ams_sent"] == 1 and snap["am_bytes"] == 40
    assert snap["local_accesses"] == 1
    assert snap["remote_accesses"] == 4  # puts + gets + atomics


def test_derived_properties():
    s = CommStats()
    s.record_put(10)
    s.record_get(20)
    s.record_am(30)
    assert s.messages == 3
    assert s.bytes_moved == 60


def test_reset():
    s = CommStats()
    s.record_put(10)
    s.reset()
    assert s.snapshot()["puts"] == 0
    assert s.messages == 0


def test_aggregate():
    a, b = CommStats(), CommStats()
    a.record_put(1)
    b.record_put(2)
    b.record_get(4)
    total = aggregate([a, b])
    assert total["puts"] == 2
    assert total["put_bytes"] == 3
    assert total["gets"] == 1


def test_chaos_reorders_counted_snapshot_reset_aggregate():
    s = CommStats()
    s.record_chaos_reorder()
    s.record_chaos_reorder()
    s.record_chaos_drop()
    assert s.snapshot()["chaos_reorders"] == 2
    t = CommStats()
    t.record_chaos_reorder()
    assert aggregate([s, t])["chaos_reorders"] == 3
    s.reset()
    assert s.snapshot()["chaos_reorders"] == 0
    assert s.snapshot()["chaos_drops"] == 0


def test_derived_properties_consistent_under_concurrent_updates():
    """messages/bytes_moved/coalescing_ratio read several counters; they
    must come from one locked snapshot, never a torn multi-field read
    (e.g. a put counted in ``puts`` but not yet in ``put_bytes``)."""
    import threading

    s = CommStats()
    stop = threading.Event()
    torn = []

    def writer():
        while not stop.is_set():
            s.record_put_indexed(4, 32)

    def reader():
        while not stop.is_set():
            snap = s.snapshot()
            # Invariants that hold in every consistent state:
            if snap["put_bytes"] != 8 * snap["batched_elements"]:
                torn.append(snap)
            if s.batched_ops and s.coalescing_ratio != 4.0:
                torn.append("ratio")

    threads = [threading.Thread(target=writer) for _ in range(2)] + \
              [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    import time

    time.sleep(0.2)
    stop.set()
    for t in threads:
        t.join()
    assert not torn
    assert s.messages == s.batched_ops == s.snapshot()["puts_indexed"]
    assert s.coalescing_ratio == 4.0
