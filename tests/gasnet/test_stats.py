"""CommStats counter tests."""

from repro.gasnet.stats import CommStats, aggregate


def test_counters_accumulate():
    s = CommStats()
    s.record_put(100)
    s.record_put(50)
    s.record_get(8)
    s.record_atomic()
    s.record_am(40)
    s.record_am_handled()
    s.record_reply()
    s.record_barrier()
    s.record_collective()
    s.record_local()
    snap = s.snapshot()
    assert snap["puts"] == 2 and snap["put_bytes"] == 150
    assert snap["gets"] == 1 and snap["get_bytes"] == 8
    assert snap["atomics"] == 1
    assert snap["ams_sent"] == 1 and snap["am_bytes"] == 40
    assert snap["local_accesses"] == 1
    assert snap["remote_accesses"] == 4  # puts + gets + atomics


def test_derived_properties():
    s = CommStats()
    s.record_put(10)
    s.record_get(20)
    s.record_am(30)
    assert s.messages == 3
    assert s.bytes_moved == 60


def test_reset():
    s = CommStats()
    s.record_put(10)
    s.reset()
    assert s.snapshot()["puts"] == 0
    assert s.messages == 0


def test_aggregate():
    a, b = CommStats(), CommStats()
    a.record_put(1)
    b.record_put(2)
    b.record_get(4)
    total = aggregate([a, b])
    assert total["puts"] == 2
    assert total["put_bytes"] == 3
    assert total["gets"] == 1
