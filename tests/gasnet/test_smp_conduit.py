"""SMP conduit: one-sided RMA semantics, stats, fault injection."""

import numpy as np
import pytest

import repro
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_rma_put_get_roundtrip_between_ranks():
    def body():
        me = repro.myrank()
        ptr = None
        if me == 0:
            ptr = repro.allocate(0, 16, np.int32)
        ptr = repro.collectives.bcast(ptr, root=0)
        if me == 1:
            ptr.put(np.arange(16, dtype=np.int32))
        repro.barrier()
        got = ptr.get(16)
        assert np.array_equal(got, np.arange(16, dtype=np.int32))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_rma_is_one_sided_no_target_handler():
    """A put to a rank that never calls advance() still completes —
    the RDMA contract."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        if me == 1:
            sa[0] = 99  # element 0 lives on rank 0
            assert sa[0] == 99  # read back without rank 0's involvement
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_conduit_stats_attribution():
    """RMA ops are charged to the *initiator*, not the target."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        before = repro.current_world().ranks[me].stats.snapshot()
        if me == 1:
            sa[0] = 5        # remote put
            _ = sa[0]        # remote get
        repro.barrier()
        after = repro.current_world().ranks[me].stats.snapshot()
        return (after["puts"] - before["puts"],
                after["gets"] - before["gets"])

    res = run_spmd(body, ranks=2)
    assert res[1] == (1, 1)
    assert res[0] == (0, 0)


def test_atomic_xor_is_consistent_under_contention():
    """All ranks xor the same cell; xor of all operands must survive."""
    def body():
        me = repro.myrank()
        n = repro.ranks()
        sa = repro.SharedArray(np.uint64, size=1, block=1)
        repro.barrier()
        for i in range(50):
            sa.atomic(0, "xor", np.uint64((me + 1) * 1000 + i))
        repro.barrier()
        return int(sa[0])

    res = run_spmd(body, ranks=4)
    expect = 0
    for me in range(4):
        for i in range(50):
            expect ^= (me + 1) * 1000 + i
    assert res[0] == expect


def test_fault_injection_fails_the_world():
    def body():
        me = repro.myrank()
        repro.barrier()
        if me == 0:
            conduit = repro.current_world().conduit
            conduit.fail_next_am = RuntimeError("injected NIC failure")
            repro.async_(1)(int, 1)  # send_am raises on rank 0
        repro.barrier()

    with pytest.raises(RuntimeError, match="injected NIC failure"):
        run_spmd(body, ranks=2)


def test_bad_rank_rejected():
    def body():
        ctx = repro.current_world().ranks[repro.myrank()]
        with pytest.raises(PgasError):
            ctx.world.conduit.rma_get(ctx.rank, 99, 0, np.uint8, 1)
        return True

    assert all(run_spmd(body, ranks=2))
