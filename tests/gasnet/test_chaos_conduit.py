"""The construct stack under a lossy, faulty transport.

Every test runs the full UPC++ surface over
``ReliableConduit(ChaosConduit(...))`` with a fixed seed: drops,
duplicates, reorderings and transient RMA faults are injected
deterministically, and the reliability layer must hide all of them.
The acceptance bar from the fault-model contract:

* programs produce exactly the results they produce on the pristine
  SMP conduit (incl. exactly-once retried atomics);
* the injected trouble is *visible* in CommStats (retransmits,
  suppressed duplicates, RMA retries) — i.e. the layer really was
  exercised, not bypassed.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.world import current
from repro.errors import CommTimeout
from repro.gasnet import ChaosConduit, ReliableConduit


def _run(body, ranks=4, seed=0, drop=0.1, dup=0.1, reorder=0.05,
         fault=0.05, **spmd_kw):
    """Run ``body`` over a seeded chaos conduit wrapped in reliability."""
    conduit = ChaosConduit(
        seed=seed, am_drop_rate=drop, am_dup_rate=dup,
        am_reorder_rate=reorder, rma_fault_rate=fault,
    )
    spmd_kw.setdefault("reliability", {"seed": seed})
    return repro.spmd(body, ranks=ranks, conduit=conduit, **spmd_kw)


def _aggregate(snapshots):
    agg: dict = {}
    for s in snapshots:
        for k, v in s.items():
            if isinstance(v, (int, float)):
                agg[k] = agg.get(k, 0) + v
    return agg


# ---------------------------------------------------------------- asyncs

def test_finish_asyncs_under_chaos():
    def body():
        r, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=n)
        repro.barrier()

        def bump(i):
            sa.local_view()[0] += i

        with repro.finish():
            for i in range(n):
                repro.async_(i)(bump, r + 1)
        repro.barrier()
        # every rank ran one bump from each rank: sum(1..n)
        assert sa[r] == n * (n + 1) // 2
        return True

    assert all(_run(body))


def test_events_under_chaos():
    def body():
        r, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=n)
        repro.barrier()
        ev = repro.Event()

        def stage1(i):
            sa.local_view()[0] = i

        def stage2():
            sa.local_view()[0] *= 2

        with repro.finish():
            repro.async_((r + 1) % n, signal=ev)(stage1, 21)
            repro.async_after((r + 1) % n, ev)(stage2)
        repro.barrier()
        assert sa[r] == 42
        return True

    assert all(_run(body))


# ----------------------------------------------------------------- locks

def test_lock_mutual_exclusion_under_chaos():
    def body():
        n = repro.ranks()
        sa = repro.SharedArray(np.int64, size=n)
        repro.barrier()
        lk = repro.GlobalLock(owner=0)
        for _ in range(8):
            with lk:
                # read-modify-write race unless the lock really excludes
                v = sa[0]
                sa[0] = v + 1
        repro.barrier()
        return int(sa[0])

    assert _run(body, ranks=3) == [24, 24, 24]


# ----------------------------------------------------------- collectives

def test_collectives_under_chaos():
    def body():
        r, n = repro.myrank(), repro.ranks()
        assert repro.collectives.allreduce(r, op="sum") == n * (n - 1) // 2
        assert repro.collectives.bcast(r * 7 if r == 2 else None,
                                       root=2) == 14
        assert repro.collectives.allgather(r) == list(range(n))
        repro.barrier()
        return True

    assert all(_run(body))


# ----------------------------------------------------------- batched RMA

def test_gather_scatter_under_chaos():
    def body():
        r, n = repro.myrank(), repro.ranks()
        per = 16
        sa = repro.SharedArray(np.int64, size=per * n, block=per)
        sa.local_view()[:] = np.arange(per) + r * 1000
        repro.barrier()
        peer = (r + 1) % n
        idx = np.arange(per) + peer * per
        got = sa.gather(idx)
        assert np.array_equal(got, np.arange(per) + peer * 1000)
        sa.scatter(idx, got + 5)
        repro.barrier()
        expect = np.arange(per) + r * 1000 + 5
        assert np.array_equal(sa.local_view()[:per], expect)
        repro.barrier()
        return True

    assert all(_run(body))


def test_atomic_batch_exactly_once_under_faults():
    """The counter-sum proof: N ranks apply M batched increments with
    duplicate indices at a high fault rate; the total must be *exact* —
    a single double-applied retry breaks it."""
    def body():
        r, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=8, block=8)  # all on rank 0
        repro.barrier()
        idx = np.array([0, 1, 0, 2, 0])  # duplicate index 0
        for _ in range(10):
            sa.atomic_batch(idx, "add", np.ones(5, dtype=np.int64))
        repro.barrier()
        if r == 0:
            lv = sa.local_view()
            assert lv[0] == 3 * 10 * n, lv[:3]
            assert lv[1] == 10 * n and lv[2] == 10 * n
        repro.barrier()
        return True

    assert all(_run(body, fault=0.2))


def test_scalar_atomics_exactly_once_under_faults():
    def body():
        n = repro.ranks()
        sv = repro.SharedVar(np.int64, init=0, owner=0)
        sv = repro.collectives.bcast(sv, root=0)
        repro.barrier()
        for _ in range(25):
            sv.atomic("add", 1)
        repro.barrier()
        got = int(sv.get())
        assert got == 25 * n, got
        return True

    assert all(_run(body, fault=0.25))


# ----------------------------------------------------------- sample sort

def test_sample_sort_under_chaos():
    from repro.bench.sample_sort import sample_sort

    res = _run(lambda: sample_sort(keys_per_rank=512, variant="upcxx"),
               ranks=4)
    assert all(r.verified for r in res)


# ----------------------------------------------------- stats visibility

def test_chaos_is_visible_in_stats():
    """High injection rates must leave traces in the counters — proof
    the reliability machinery actually fired rather than the chaos
    layer being bypassed."""
    def body():
        r, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=n)
        repro.barrier()
        with repro.finish():
            for i in range(n):
                for _ in range(4):
                    repro.async_(i)(lambda: None)
        for _ in range(10):
            sa[(r + 1) % n] = r
            _ = sa[(r + 2) % n]
        repro.barrier()
        return current().stats.snapshot()

    agg = _aggregate(_run(body, drop=0.2, dup=0.2, reorder=0.1,
                          fault=0.15))
    assert agg["chaos_drops"] > 0
    assert agg["chaos_dups"] > 0
    assert agg["chaos_reorders"] > 0
    assert agg["chaos_faults"] > 0
    assert agg["am_retransmits"] > 0     # drops were retried
    assert agg["dup_ams"] > 0            # duplicates were suppressed
    assert agg["rma_retries"] > 0        # faults were retried
    assert agg["acks_sent"] > 0


def test_determinism_same_seed_same_chaos():
    """Same seed → identical injected-chaos counters (the chaos RNG is
    the only nondeterminism source the conduit itself introduces)."""
    def body():
        r, n = repro.myrank(), repro.ranks()
        sv = repro.SharedVar(np.int64, init=0, owner=0)
        sv = repro.collectives.bcast(sv, root=0)
        repro.barrier()
        for _ in range(10):
            sv.atomic("add", 1)
        repro.barrier()
        return int(sv.get())

    a = _run(body, seed=7, fault=0.2)
    b = _run(body, seed=7, fault=0.2)
    assert a == b == [40, 40, 40, 40]


# -------------------------------------------- without the reliable layer

def test_chaos_without_reliability_times_out():
    """A total blackout with no reliability layer must surface as a
    CommTimeout, not a hang: the raw conduit makes no delivery
    promises."""
    def body():
        r = repro.myrank()
        if r == 0:
            fut = current().send_am(1, "noop_probe", args=(),
                                    expect_reply=True)
            fut.get(timeout=1.0)
        return True

    from repro.gasnet.am import am_handler

    @am_handler("noop_probe")
    def _probe(ctx, am):  # pragma: no cover - never delivered
        ctx.reply(am, args=("ok",))

    conduit = ChaosConduit(seed=0, am_drop_rate=1.0)
    with pytest.raises(CommTimeout):
        repro.spmd(body, ranks=2, conduit=conduit)


def test_reliable_wrapper_composes_explicitly():
    """ReliableConduit can be constructed by hand around any conduit."""
    def body():
        r, n = repro.myrank(), repro.ranks()
        with repro.finish():
            repro.async_((r + 1) % n)(lambda: None)
        repro.barrier()
        return True

    conduit = ReliableConduit(
        ChaosConduit(seed=3, am_drop_rate=0.2), seed=3
    )
    assert all(repro.spmd(body, ranks=4, conduit=conduit))
