"""The SPSC ring transport: unit contract and end-to-end behaviour.

Unit tests drive :class:`~repro.gasnet.ring.RingProducer` /
:class:`~repro.gasnet.ring.RingConsumer` over a plain ``bytearray`` —
the classes are buffer-agnostic, so the full slot/spill/backpressure
contract is checkable without processes.  The SPMD tests then run the
same machinery for real (``conduit="proc+ring"``): OOB spill under a
deliberately tiny slot size, shutdown hygiene after a rank crash, and
the ``wire_ring_*`` telemetry flowing through snapshot / reset /
aggregate / ``metrics_reduce``.
"""

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest

import repro
from repro.core.collectives import barrier
from repro.errors import RankDead
from repro.gasnet.ring import SLOT_HDR, RingConsumer, RingProducer, RingSpec
from repro.gasnet.stats import CommStats, aggregate
from tests.conftest import run_spmd

RING_COUNTERS = (
    "wire_ring_slots", "wire_ring_frames", "wire_ring_agg_frames",
    "wire_ring_spills", "wire_ring_full_backoffs",
    "wire_ring_doorbells", "wire_ring_wakeups",
)


def _pair(slots=4, slot_bytes=64, spill_bytes=256):
    spec = RingSpec(slots=slots, slot_bytes=slot_bytes,
                    spill_bytes=spill_bytes)
    buf = bytearray(spec.region_bytes)
    return spec, RingProducer(buf, spec), RingConsumer(buf, spec)


def _emit_all(prod, cons, data: bytes) -> bytearray:
    """Push all of ``data`` through the ring, draining as needed, and
    return the reassembled byte stream the consumer saw."""
    out = bytearray()
    off = 0
    while off < len(data):
        n = prod.try_emit(data, off)
        if n == 0:
            chunk = cons.try_recv()
            assert chunk is not None, "full ring must have pending slots"
            out += chunk
            continue
        off += n
    while True:
        chunk = cons.try_recv()
        if chunk is None:
            break
        out += chunk
    return out


# -- unit: slot/spill/backpressure contract ---------------------------------
def test_ring_roundtrip_small_message():
    _, prod, cons = _pair()
    msg = b"hello ring"
    assert not cons.pending()
    assert prod.try_emit(msg, 0) == len(msg)
    assert prod.last_spill == 0
    assert cons.pending()
    assert bytes(cons.try_recv()) == msg
    assert cons.try_recv() is None


def test_ring_stream_survives_wraparound():
    """More chunks than slots: cursors wrap, the byte stream does not."""
    spec, prod, cons = _pair(slots=4, slot_bytes=64)
    rng = np.random.default_rng(7)
    data = bytes(rng.integers(0, 256, size=40 * spec.inline_cap,
                              dtype=np.uint8))
    assert bytes(_emit_all(prod, cons, data)) == data


def test_ring_slot_exactly_full_is_inline_only():
    spec, prod, cons = _pair(slot_bytes=64)
    msg = bytes(range(48)) * (spec.inline_cap // 48 + 1)
    msg = msg[:spec.inline_cap]
    assert len(msg) == spec.slot_bytes - SLOT_HDR.size
    assert prod.try_emit(msg, 0) == spec.inline_cap
    assert prod.last_spill == 0 and prod.spill_in_use() == 0
    assert bytes(cons.try_recv()) == msg


def test_ring_spill_roundtrip_and_release():
    """A chunk bigger than one slot's inline room rides the spill
    region and the consumer's copy-out releases it byte-for-byte."""
    spec, prod, cons = _pair(slot_bytes=64, spill_bytes=1024)
    msg = bytes(i % 251 for i in range(3 * spec.inline_cap))
    assert prod.try_emit(msg, 0) == len(msg)  # one slot carries it all
    assert prod.last_spill == len(msg) - spec.inline_cap
    assert prod.spill_in_use() == prod.last_spill
    assert bytes(cons.try_recv()) == msg
    assert prod.spill_in_use() == 0


def test_ring_spill_exhausted_still_progresses():
    """With no spill room at all, a big message spans many inline-only
    slots — bounded region, unbounded stream."""
    spec, prod, cons = _pair(slots=4, slot_bytes=64, spill_bytes=0)
    msg = bytes(i % 256 for i in range(10 * spec.inline_cap))
    assert bytes(_emit_all(prod, cons, msg)) == msg


def test_ring_spill_wrap_contiguity():
    """The bump allocator never wraps a chunk: near the region end a
    slot takes only the contiguous tail, the rest lands in later
    slots — the stream still reassembles exactly."""
    spec, prod, cons = _pair(slots=8, slot_bytes=32, spill_bytes=100)
    rng = np.random.default_rng(11)
    for size in (90, 70, 85, 95, 60):  # repeatedly straddle the wrap
        msg = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
        assert bytes(_emit_all(prod, cons, msg)) == msg
    assert prod.spill_in_use() == 0


def test_ring_backpressure_full_then_recover():
    spec, prod, cons = _pair(slots=2, slot_bytes=64)
    assert prod.try_emit(b"a", 0) == 1
    assert prod.try_emit(b"b", 0) == 1
    assert prod.free_slots() == 0
    assert prod.try_emit(b"c", 0) == 0  # full: no progress, no damage
    assert bytes(cons.try_recv()) == b"a"
    assert prod.free_slots() == 1
    assert prod.try_emit(b"c", 0) == 1
    assert bytes(cons.try_recv()) == b"b"
    assert bytes(cons.try_recv()) == b"c"


def test_ring_spec_rejects_degenerate_geometry():
    with pytest.raises(ValueError):
        RingSpec(slots=1)
    with pytest.raises(ValueError):
        RingSpec(slot_bytes=SLOT_HDR.size)


# -- unit: wire_ring_* counter plumbing -------------------------------------
def test_ring_counters_snapshot_reset_aggregate():
    s = CommStats()
    s.record_ring_flush(slots=2, frames=3, spilled=True)
    s.record_ring_flush(slots=1, frames=1, spilled=False)
    s.record_ring_backoff()
    s.record_ring_doorbell()
    s.record_ring_wakeup()
    snap = s.snapshot()
    assert snap["wire_ring_slots"] == 3
    assert snap["wire_ring_frames"] == 4
    assert snap["wire_ring_agg_frames"] == 3  # only the coalesced flush
    assert snap["wire_ring_spills"] == 1
    assert snap["wire_ring_full_backoffs"] == 1
    assert snap["wire_ring_doorbells"] == 1
    assert snap["wire_ring_wakeups"] == 1
    other = CommStats()
    other.record_ring_flush(slots=5, frames=5, spilled=False)
    total = aggregate([s, other])
    assert total["wire_ring_slots"] == 8
    assert total["wire_ring_frames"] == 9
    assert total["wire_ring_spills"] == 1
    s.reset()
    assert all(s.snapshot()[k] == 0 for k in RING_COUNTERS)


# -- integration: the transport for real ------------------------------------
def _sum_payload(v):
    # module-level so the function reference pickles across processes
    return int(v.sum())


def test_ring_oob_spill_end_to_end(monkeypatch):
    """Tiny slots force every payload-carrying AM through the spill
    region; the answer must still be exact and the spills observable."""
    monkeypatch.setenv("REPRO_RING_SLOT_BYTES", "128")
    work = _sum_payload

    def body():
        me = repro.myrank()
        v = np.arange(512, dtype=np.int64) + me
        got = repro.async_((me + 1) % repro.ranks())(work, v).get()
        assert got == int(v.sum())
        barrier()
        ctx = repro.current_world().ranks[me]
        snap = ctx.stats.snapshot()
        return snap["wire_ring_spills"], snap["wire_ring_frames"]

    res = run_spmd(body, ranks=2, conduit="proc+ring", timeout=60.0)
    assert all(frames > 0 for _, frames in res)
    assert sum(spills for spills, _ in res) > 0


def test_ring_crash_leaves_no_shm(monkeypatch):
    """A rank death must not leak the ring block or the per-rank
    segments (they are all /dev/shm files named repro_*)."""
    def body():
        if repro.myrank() == 1:
            repro.die()
        barrier()
        return True

    with pytest.raises(RankDead):
        run_spmd(body, ranks=2, conduit="proc+ring", timeout=60.0)
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
    if os.path.isdir("/dev/shm"):
        assert glob.glob("/dev/shm/repro_*") == []


def test_ring_counters_through_metrics_reduce():
    """wire_ring_* counters ride the cluster metrics plane: every rank
    sees one merged view whose totals dominate the per-rank snapshots
    taken just before the reduce (counters only grow)."""
    bounce = _sum_payload

    def body():
        me = repro.myrank()
        n = repro.ranks()
        for i in range(5):
            repro.async_((me + 1) % n)(bounce,
                                       np.arange(8, dtype=np.int64)).get()
        barrier()
        ctx = repro.current_world().ranks[me]
        pre = {k: v for k, v in ctx.stats.snapshot().items()
               if k.startswith("wire_ring_")}
        merged = repro.current_world().metrics_reduce()
        ring = {k: v for k, v in merged["counters"].items()
                if k.startswith("wire_ring_")}
        return pre, ring

    res = run_spmd(body, ranks=3, conduit="proc+ring", telemetry="full",
                   timeout=60.0)
    merged_views = [ring for _, ring in res]
    # the collective is deterministic: all ranks see the same totals
    assert all(m == merged_views[0] for m in merged_views)
    merged = merged_views[0]
    assert set(RING_COUNTERS) <= set(merged)
    for key in ("wire_ring_slots", "wire_ring_frames"):
        assert merged[key] >= sum(pre[key] for pre, _ in res) > 0


def test_socket_transport_has_no_ring_counters():
    """The fallback transport must not touch ring telemetry — the
    counters are how a deployment verifies which transport it is on."""
    bounce = _sum_payload

    def body():
        me = repro.myrank()
        repro.async_((me + 1) % repro.ranks())(
            bounce, np.arange(8, dtype=np.int64)).get()
        barrier()
        ctx = repro.current_world().ranks[me]
        return {k: v for k, v in ctx.stats.snapshot().items()
                if k.startswith("wire_ring_")}

    for snap in run_spmd(body, ranks=2, conduit="proc+socket",
                         timeout=60.0):
        assert all(v == 0 for v in snap.values())
