"""Conduit conformance: one behavioural contract, every backend.

The same SPMD bodies run over the thread-backed SMP conduit and the
process-backed proc conduit; both must satisfy the full conduit
contract — all six RMA ops, AM roundtrips with out-of-band ndarray
payloads, atomics under concurrent mutation, collectives, telemetry —
and the proc backend must additionally honour its own guarantees
(zero-copy RMA with no frames and no pickle, clean shutdown with no
leaked shared memory or zombie processes, clear errors for payloads
that cannot cross a process boundary).
"""

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest

import repro
from repro.core import proclaunch
from repro.core.collectives import allreduce, barrier
from repro.errors import PgasError, RankDead, SerializationError
from repro.gasnet import backends
from repro.gasnet.chaos import ChaosConduit
from tests.conftest import run_spmd

# "proc" resolves to the default transport (rings); the pinned variants
# run the same contract over each AM transport explicitly, so a ring
# regression cannot hide behind the socketpair fallback or vice versa.
CONDUITS = ("smp", "proc+ring", "proc+socket")


@pytest.fixture(params=CONDUITS)
def conduit(request):
    return request.param


def _no_leaked_shm() -> list:
    """Shared-memory blocks left behind by the proc fabric, if any."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob("/dev/shm/repro_*")


# -- process model ----------------------------------------------------------
def test_rank_isolation_matches_backend(conduit):
    """smp ranks share a process; proc ranks each get their own."""
    def body():
        return os.getpid()

    pids = run_spmd(body, ranks=3, conduit=conduit)
    if conduit == "smp":
        assert len(set(pids)) == 1
    else:
        assert len(set(pids)) == 3
        assert os.getpid() not in pids


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "proc")

    def body():
        return os.getpid()

    pids = run_spmd(body, ranks=2)  # no explicit conduit: env decides
    assert len(set(pids)) == 2 and os.getpid() not in pids


# -- the six RMA ops --------------------------------------------------------
def test_all_six_rma_ops(conduit):
    def body():
        me = repro.myrank()
        n = repro.ranks()
        sa = repro.SharedArray(np.int64, size=4 * n, block=4)
        peer = (me + 1) % n
        base = 4 * peer
        barrier()
        # scalar put / get
        sa[base] = 100 + me
        assert sa[base] == 100 + me
        # scalar atomic (fetch-add on the peer's stripe)
        old = sa.atomic(base + 1, "add", 5)
        assert old == 0 and sa[base + 1] == 5
        # indexed put (scatter) / indexed get (gather)
        sa.scatter([base + 2, base + 3], [7, 9])
        got = sa.gather([base + 2, base + 3])
        assert list(got) == [7, 9]
        # batched atomics
        olds = sa.atomic_batch([base + 2, base + 2], "add", [1, 1],
                               return_old=True)
        assert list(olds) == [7, 8] and sa[base + 2] == 9
        barrier()
        # after the barrier this rank's own stripe holds its peer's writes
        prev = (me - 1) % n
        assert sa[4 * me] == 100 + prev
        return True

    assert all(run_spmd(body, ranks=3, conduit=conduit))


def test_atomics_under_concurrent_mutation(conduit):
    """Every rank hammers one shared counter; no update may be lost."""
    def body():
        n = repro.ranks()
        sa = repro.SharedArray(np.int64, size=1, block=1)
        barrier()
        for _ in range(50):
            sa.atomic(0, "add", 1)
        barrier()
        total = int(sa[0])
        barrier()
        return total

    res = run_spmd(body, ranks=3, conduit=conduit, timeout=60.0)
    assert res == [150, 150, 150]


# -- active messages --------------------------------------------------------
def _work(v):
    # module-level: remote-task functions travel by reference (pickled
    # by qualified name), so they must be importable in the peer process
    return int(v.sum()), v.dtype.str


def _bounce(x):
    return x * 2


def test_am_roundtrip_with_oob_ndarray_payload(conduit):
    """A remote task carries an ndarray out-of-band and replies."""
    work = _work

    def body():
        me = repro.myrank()
        n = repro.ranks()
        v = np.arange(64, dtype=np.int64) + me
        fut = repro.async_((me + 1) % n)(work, v)
        total, dtype = fut.get()
        assert total == int(v.sum()) and dtype == v.dtype.str
        barrier()
        return True

    assert all(run_spmd(body, ranks=3, conduit=conduit, timeout=60.0))


def test_am_replies_cross_ranks_many_times(conduit):
    bounce = _bounce

    def body():
        me = repro.myrank()
        n = repro.ranks()
        acc = 0
        for i in range(10):
            acc += repro.async_((me + 1 + i) % n)(bounce, i).get()
        barrier()
        return acc

    res = run_spmd(body, ranks=3, conduit=conduit, timeout=60.0)
    assert res == [sum(i * 2 for i in range(10))] * 3


# -- collectives + telemetry ------------------------------------------------
def test_collectives_and_metrics_reduce(conduit):
    def body():
        me = repro.myrank()
        total = allreduce(me + 1, op="sum")
        snap = repro.current_world().metrics_reduce()
        return total, sorted(snap["ranks"])

    res = run_spmd(body, ranks=3, conduit=conduit, telemetry="full",
                   timeout=60.0)
    for total, ranks_seen in res:
        assert total == 6
        assert ranks_seen == [0, 1, 2]


# -- shutdown hygiene -------------------------------------------------------
def test_clean_shutdown_no_leaked_shm_or_children():
    def body():
        sa = repro.SharedArray(np.int64, size=8, block=4)
        sa[repro.myrank()] = 1
        barrier()
        return True

    assert all(run_spmd(body, ranks=2, conduit="proc"))
    # the launcher reaps its children and unlinks every segment block
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
    assert _no_leaked_shm() == []


def test_shutdown_cleans_up_after_failure_too():
    def body():
        raise ValueError("deliberate")

    with pytest.raises(ValueError):
        run_spmd(body, ranks=2, conduit="proc")
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
    assert _no_leaked_shm() == []


# -- proc-specific guarantees ----------------------------------------------
def test_proc_rma_is_zero_copy_no_frames_no_pickle():
    """Pure RMA crosses process boundaries through shared memory alone:
    no wire frame is sent and nothing is pickled."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=8, block=4)
        barrier()
        cond = repro.current_world().conduit
        frames0 = cond.frames_sent
        stats = repro.current_world().ranks[me].stats
        s0 = stats.snapshot()
        peer_base = 4 * ((me + 1) % repro.ranks())
        for i in range(20):
            sa[peer_base + (i % 4)] = i
            _ = sa[peer_base + (i % 4)]
            sa.atomic(peer_base, "add", 1)
        s1 = stats.snapshot()
        frames = cond.frames_sent - frames0
        barrier()
        return (frames, s1["puts"] - s0["puts"], s1["gets"] - s0["gets"],
                s1["pickle_fallbacks"] - s0["pickle_fallbacks"])

    for frames, puts, gets, pickles in run_spmd(body, ranks=2,
                                                conduit="proc"):
        assert frames == 0       # not one AM frame for 60 RMA ops
        assert puts == 20 and gets == 20
        assert pickles == 0      # nothing fell back to pickle


def test_proc_byref_payload_raises_serialization_error():
    """A payload that only works by reference (an unpicklable closure)
    must fail loudly at the sender, not corrupt the wire."""
    def body():
        me = repro.myrank()
        n = repro.ranks()
        lock = __import__("threading").Lock()
        try:
            repro.async_((me + 1) % n)(lambda: lock)
        except SerializationError:
            caught = True
        else:
            caught = False
        barrier()
        return caught

    assert all(run_spmd(body, ranks=2, conduit="proc"))


def test_proc_unpicklable_return_value_raises():
    def body():
        return __import__("threading").Lock()

    with pytest.raises(SerializationError):
        run_spmd(body, ranks=2, conduit="proc")


def test_proc_die_produces_dump_with_all_ranks_events():
    """A simulated crash surfaces as RankDead and the launcher merges
    every rank's flight ring — including the dead rank's — into one
    cross-process dump."""
    def body():
        me = repro.myrank()
        allreduce(1, op="sum")  # everyone records some traffic first
        if me == 1:
            repro.die()
        allreduce(1, op="sum")
        return me

    proclaunch.LAST_DUMP = None
    with pytest.raises(RankDead):
        run_spmd(body, ranks=3, conduit="proc", telemetry="flight",
                 timeout=60.0)
    dump = proclaunch.LAST_DUMP
    assert dump is not None and "FLIGHT RECORDER DUMP" in dump
    for r in range(3):
        assert f"rank {r}:" in dump


def test_proc_survive_rank_death():
    def body():
        me = repro.myrank()
        if me == 1:
            repro.die()
        return me * 10

    res = run_spmd(body, ranks=3, conduit="proc",
                   survive_rank_death=True, timeout=60.0)
    assert res[0] == 0 and res[1] is None and res[2] == 20


def test_chaos_requires_in_process_hooks():
    """Capability gate: the chaos wrapper needs same-process delivery
    hooks, which a cross-process conduit cannot offer."""
    caps = backends.backend("proc").caps
    assert not caps.in_process_hooks

    class _ProcLike:
        pass

    stub = _ProcLike()
    stub.caps = caps
    with pytest.raises(PgasError):
        ChaosConduit(inner=stub)


def test_backend_registry_capabilities():
    smp = backends.backend("smp").caps
    proc = backends.backend("proc").caps
    assert not smp.cross_process and proc.cross_process
    assert smp.in_process_hooks and not proc.in_process_hooks
    assert proc.zero_copy_rma and proc.needs_launcher
    assert not smp.needs_launcher
    assert set(backends.backend_names()) >= {
        "smp", "proc", "proc+ring", "proc+socket"}
    # the pinned transport variants: same conduit contract, different
    # AM transport — capability flags and launcher options must agree
    ring = backends.backend("proc+ring")
    sock = backends.backend("proc+socket")
    assert ring.caps.shm_rings and not sock.caps.shm_rings
    assert not smp.shm_rings
    assert ring.options == {"transport": "ring"}
    assert sock.options == {"transport": "socket"}
    assert ring.caps.needs_launcher and sock.caps.needs_launcher
    # "proc" defaults to the ring transport's capability set
    assert proc == ring.caps
