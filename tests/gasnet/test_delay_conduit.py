"""The full construct stack under randomized message delay/reordering.

Anything that silently relied on the SMP conduit's instant delivery —
replies racing requests, events firing during registration, collectives
overlapping asyncs — fails loudly here.
"""

import numpy as np
import pytest

import repro
from repro.gasnet.delay import DelayConduit


def _run(body, ranks=4, seed=1, **kw):
    return repro.spmd(
        body, ranks=ranks, timeout=60,
        conduit=DelayConduit(base_delay=0.0005, jitter=0.003, seed=seed),
        **kw,
    )


def test_async_and_finish_under_delay():
    def body():
        me, n = repro.myrank(), repro.ranks()
        results = []
        with repro.finish():
            for i in range(10):
                f = repro.async_((me + i) % n)(lambda x: x + 1, i)
                f.add_callback(lambda fut: results.append(fut.get()))
        assert sorted(results) == list(range(1, 11))
        repro.barrier()
        return True

    assert all(_run(body))


def test_listing1_dag_under_delay():
    from tests.core.test_listing1_dag import _check_constraints, _run_dag

    def body():
        if repro.myrank() == 0:
            order, _ = _run_dag()
            _check_constraints(order)
        repro.barrier()
        return True

    assert all(_run(body))


def test_lock_mutual_exclusion_under_delay():
    def body():
        lk = repro.GlobalLock()
        c = repro.SharedVar(np.int64, init=0)
        repro.barrier()
        for _ in range(8):
            with lk:
                c.value = c.value + 1
        repro.barrier()
        return int(c.value)

    res = _run(body, ranks=3)
    assert res == [24, 24, 24]


def test_collectives_under_delay():
    def body():
        me = repro.myrank()
        assert repro.collectives.allreduce(me) == 6
        assert repro.collectives.bcast(
            "x" if me == 2 else None, root=2) == "x"
        got = repro.collectives.alltoall(
            [f"{me}->{d}" for d in range(repro.ranks())]
        )
        assert got[me] == f"{me}->{me}"
        repro.barrier()
        return True

    assert all(_run(body))


def test_remote_allocation_under_delay():
    def body():
        me, n = repro.myrank(), repro.ranks()
        ptrs = [repro.allocate((me + k) % n, 16, np.int64)
                for k in range(1, 4)]
        for p in ptrs:
            p.put(np.arange(16))
        for p in ptrs:
            assert p[15] == 15
            repro.deallocate(p)
        repro.barrier()
        return True

    assert all(_run(body))


def test_fifo_preserved_between_pairs():
    """Back-to-back asyncs to the same target execute in issue order —
    the per-pair FIFO contract survives the delay scrambling."""
    def body():
        me = repro.myrank()
        if me == 0:
            order = []
            with repro.finish():
                for i in range(12):
                    # all to rank 1; target-side append order == issue
                    # order because exec AMs arrive FIFO per pair
                    repro.async_(1)(order_append, i)
            got = repro.async_(1)(order_snapshot).get()
            assert got == list(range(12)), got
        repro.barrier()
        return True

    assert all(_run(body, ranks=2))


def order_append(i):
    ctx = repro.current_world().ranks[repro.myrank()]
    ctx.scratch.setdefault("order", []).append(i)


def order_snapshot():
    ctx = repro.current_world().ranks[repro.myrank()]
    return list(ctx.scratch.get("order", []))


def test_sample_sort_under_delay():
    from repro.bench.sample_sort import sample_sort

    def body():
        return sample_sort(keys_per_rank=512, variant="upcxx").verified

    assert all(_run(body, ranks=4))


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_workqueue_under_delay(seed):
    def body():
        me = repro.myrank()
        wq = repro.DistWorkQueue()
        if me == 0:
            wq.add_local(range(30))
        repro.barrier()
        done = 0
        while wq.get() is not None:
            wq.task_done()
            done += 1
        assert repro.collectives.allreduce(done) == 30
        return True

    assert all(_run(body, ranks=3, seed=seed))


@pytest.mark.parametrize("seed", [21, 42])
def test_chaos_mix_under_delay(seed):
    """The randomized mixed-API stress test on the chaos conduit."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        rng = np.random.default_rng(5000 + me)
        sa = repro.SharedArray(np.int64, size=16, block=2)
        counter = repro.SharedVar(np.int64, init=0)
        repro.barrier()
        for round_ in range(10):
            op = rng.integers(0, 4)
            if op == 0:
                sa[int(rng.integers(0, 16))] = me
            elif op == 1:
                _ = sa[int(rng.integers(0, 16))]
            elif op == 2:
                counter.atomic("add", 1)
            else:
                with repro.finish():
                    repro.async_(int(rng.integers(0, n)))(int, round_)
            if round_ % 4 == 3:
                repro.barrier()
        repro.barrier()
        return int(counter.value)

    res = _run(body, ranks=4, seed=seed)
    assert len(set(res)) == 1


# -------------------------------------------------------------- shutdown

def test_close_kills_dispatcher_and_drains_stragglers():
    """close() must leave no live dispatcher thread and no silently
    dropped message: AMs whose delay has not elapsed are delivered
    immediately at shutdown."""
    from repro.core.world import World
    from repro.gasnet.am import ActiveMessage

    conduit = DelayConduit(base_delay=30.0, jitter=0.0)
    world = World(2, conduit=conduit)
    try:
        conduit.send_am(0, 1, ActiveMessage(handler="noop", src_rank=0))
        assert conduit.pending_messages == 1   # queued 30s out
    finally:
        conduit.close()
    assert not conduit._dispatcher.is_alive()
    assert conduit.pending_messages == 0
    # the straggler was drained into the target's inbox, not dropped
    assert len(world.ranks[1]._inbox) == 1
    assert world.ranks[1]._inbox[0].handler == "noop"


def test_close_idempotent_after_normal_run():
    def body():
        repro.barrier()
        return True

    conduit = DelayConduit(base_delay=0.001, jitter=0.001)
    assert all(repro.spmd(body, ranks=2, conduit=conduit))
    assert not conduit._dispatcher.is_alive()   # spmd closed it
    conduit.close()                             # second close is harmless
    assert conduit.pending_messages == 0
