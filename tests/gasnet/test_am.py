"""Active-message plumbing tests (registry, wire accounting, replies)."""

import numpy as np
import pytest

from repro.errors import PgasError
from repro.gasnet.am import (
    ActiveMessage,
    am_handler,
    handler_registry,
    make_reply,
    payload_nbytes,
)


def test_handler_registration_and_duplicate_detection():
    @am_handler("test_unique_handler_xyz")
    def h(ctx, am):
        pass

    assert handler_registry["test_unique_handler_xyz"] is h
    # re-registering the same function is idempotent
    am_handler("test_unique_handler_xyz")(h)

    with pytest.raises(PgasError):
        @am_handler("test_unique_handler_xyz")
        def other(ctx, am):
            pass


def test_wire_bytes_includes_args_and_payload():
    from repro.gasnet.wire import HEADER

    small = ActiveMessage(handler="h", src_rank=0)
    assert small.wire_bytes == HEADER.size  # bare header, nothing else
    with_args = ActiveMessage(handler="h", src_rank=0, args=(1, "abc"))
    assert with_args.wire_bytes > small.wire_bytes
    payload = np.zeros(100, dtype=np.float64)
    with_payload = ActiveMessage(handler="h", src_rank=0, payload=payload)
    assert with_payload.wire_bytes >= HEADER.size + 800


def test_wire_bytes_cached():
    am = ActiveMessage(handler="h", src_rank=0, args=(1,))
    first = am.wire_bytes
    assert am.wire_bytes == first


def test_payload_nbytes_variants():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes(np.zeros(3, dtype=np.int32)) == 12
    assert payload_nbytes({"a": 1}) > 0  # pickled fallback


def test_make_reply_carries_token():
    req = ActiveMessage(handler="h", src_rank=3, token=77)
    rep = make_reply(req, src_rank=5, args=("ok",))
    assert rep.is_reply and rep.token == 77 and rep.src_rank == 5


def test_make_reply_requires_token():
    req = ActiveMessage(handler="h", src_rank=3)
    with pytest.raises(PgasError):
        make_reply(req, src_rank=0)


class _CountingPickle:
    """Stand-in for the codec module's pickle that counts dumps calls."""

    def __init__(self, real):
        self._real = real
        self.dumps_calls = 0

    def dumps(self, *a, **kw):
        self.dumps_calls += 1
        return self._real.dumps(*a, **kw)

    def __getattr__(self, name):
        return getattr(self._real, name)


def test_wire_bytes_pickles_at_most_once(monkeypatch):
    """Sizing an AM with a genuinely dynamic payload (a dict) costs at
    most one pickle.dumps, and the encoded frame is memoized — a second
    wire_bytes read re-pickles nothing."""
    from repro.gasnet.wire import codecs as codecs_mod

    counter = _CountingPickle(codecs_mod.pickle)
    monkeypatch.setattr(codecs_mod, "pickle", counter)

    am = ActiveMessage(handler="h", src_rank=0,
                       args=(1, "two"), payload={"k": [3, 4]})
    _ = am.wire_bytes
    assert counter.dumps_calls == 1, counter.dumps_calls
    _ = am.wire_bytes          # memoized frame: no further pickling
    assert counter.dumps_calls == 1


def test_wire_bytes_fixed_layout_never_pickles(monkeypatch):
    """ndarray/bytes payloads and scalar/str args travel as tagged
    struct fields + out-of-band buffers; no pickle at all."""
    from repro.gasnet.wire import HEADER
    from repro.gasnet.wire import codecs as codecs_mod

    counter = _CountingPickle(codecs_mod.pickle)
    monkeypatch.setattr(codecs_mod, "pickle", counter)

    blob = np.zeros(1 << 16, dtype=np.uint8)
    am = ActiveMessage(handler="h", src_rank=0, args=("hdr",),
                       payload=blob)
    size = am.wire_bytes
    assert size >= blob.nbytes
    assert counter.dumps_calls == 0

    bare = ActiveMessage(handler="h", src_rank=0, payload=b"1234")
    # bytes <= the inline threshold ride in the control stream: header
    # + tag byte + u8 length + the 4 payload bytes.
    assert bare.wire_bytes == HEADER.size + 1 + 1 + 4
    assert counter.dumps_calls == 0


def test_frame_roundtrips_args_and_payload():
    """encode_am -> thaw reproduces the message by value."""
    from repro.gasnet.wire import encode_am

    payload = np.arange(100, dtype=np.float64)
    am = ActiveMessage(handler="h", src_rank=3, args=(1, "abc", None),
                       payload=payload, token=42, is_reply=True, aux=7)
    frame = encode_am(am)
    out = frame.thaw()
    assert out.handler == "h" and out.src_rank == 3
    assert out.args == (1, "abc", None)
    assert out.token == 42 and out.is_reply and out.aux == 7
    np.testing.assert_array_equal(out.payload, payload)
    assert out.wire_bytes == am.wire_bytes
