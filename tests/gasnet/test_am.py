"""Active-message plumbing tests (registry, wire accounting, replies)."""

import numpy as np
import pytest

from repro.errors import PgasError
from repro.gasnet.am import (
    ActiveMessage,
    am_handler,
    handler_registry,
    make_reply,
    payload_nbytes,
)


def test_handler_registration_and_duplicate_detection():
    @am_handler("test_unique_handler_xyz")
    def h(ctx, am):
        pass

    assert handler_registry["test_unique_handler_xyz"] is h
    # re-registering the same function is idempotent
    am_handler("test_unique_handler_xyz")(h)

    with pytest.raises(PgasError):
        @am_handler("test_unique_handler_xyz")
        def other(ctx, am):
            pass


def test_wire_bytes_includes_args_and_payload():
    small = ActiveMessage(handler="h", src_rank=0)
    assert small.wire_bytes >= 32
    with_args = ActiveMessage(handler="h", src_rank=0, args=(1, "abc"))
    assert with_args.wire_bytes > small.wire_bytes
    payload = np.zeros(100, dtype=np.float64)
    with_payload = ActiveMessage(handler="h", src_rank=0, payload=payload)
    assert with_payload.wire_bytes >= 32 + 800


def test_wire_bytes_cached():
    am = ActiveMessage(handler="h", src_rank=0, args=(1,))
    first = am.wire_bytes
    assert am.wire_bytes == first


def test_payload_nbytes_variants():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes(np.zeros(3, dtype=np.int32)) == 12
    assert payload_nbytes({"a": 1}) > 0  # pickled fallback


def test_make_reply_carries_token():
    req = ActiveMessage(handler="h", src_rank=3, token=77)
    rep = make_reply(req, src_rank=5, args=("ok",))
    assert rep.is_reply and rep.token == 77 and rep.src_rank == 5


def test_make_reply_requires_token():
    req = ActiveMessage(handler="h", src_rank=3)
    with pytest.raises(PgasError):
        make_reply(req, src_rank=0)


def test_wire_bytes_pickles_exactly_once(monkeypatch):
    """Sizing a generic-payload AM must cost one pickle.dumps total
    (args and payload measured in a single combined pass, then cached)
    — the old path pickled the payload twice per send."""
    from repro.gasnet import am as am_mod

    calls = {"n": 0}
    real_pickle = am_mod.pickle

    class CountingPickle:
        def dumps(self, *a, **kw):
            calls["n"] += 1
            return real_pickle.dumps(*a, **kw)

        def __getattr__(self, name):
            return getattr(real_pickle, name)

    monkeypatch.setattr(am_mod, "pickle", CountingPickle())

    am = ActiveMessage(handler="h", src_rank=0,
                       args=(1, "two"), payload={"k": [3, 4]})
    _ = am.wire_bytes
    assert calls["n"] == 1, calls["n"]
    _ = am.wire_bytes          # cached: no further pickling
    assert calls["n"] == 1


def test_wire_bytes_ndarray_payload_never_pickled(monkeypatch):
    """Bulk payloads (ndarray/bytes) are sized from nbytes; pickling
    them to measure size would defeat zero-copy accounting."""
    from repro.gasnet import am as am_mod

    calls = {"n": 0}
    real_pickle = am_mod.pickle

    class CountingPickle:
        def dumps(self, *a, **kw):
            calls["n"] += 1
            for obj in a[:1]:
                assert not isinstance(obj, np.ndarray)
            return real_pickle.dumps(*a, **kw)

        def __getattr__(self, name):
            return getattr(real_pickle, name)

    monkeypatch.setattr(am_mod, "pickle", CountingPickle())

    blob = np.zeros(1 << 16, dtype=np.uint8)
    am = ActiveMessage(handler="h", src_rank=0, args=("hdr",),
                       payload=blob)
    size = am.wire_bytes
    assert size >= blob.nbytes
    assert calls["n"] == 1      # args header only, not the 64 KiB blob

    bare = ActiveMessage(handler="h", src_rank=0, payload=b"1234")
    assert bare.wire_bytes == 32 + 4
    assert calls["n"] == 1      # no args, bulk payload: zero pickles
