"""Indexed bulk RMA: segment substrate, conduit contract (fast path and
generic per-element fallback), stats accounting, and tracing."""

import numpy as np
import pytest

import repro
from repro.errors import BadPointer
from repro.gasnet.conduit import Conduit
from repro.gasnet.segment import Segment
from repro.gasnet.smp import SmpConduit
from repro.gasnet.stats import CommStats
from repro.gasnet.trace import Trace
from tests.conftest import run_spmd


# -- segment primitives -------------------------------------------------

def test_segment_indexed_read_write():
    seg = Segment(1024)
    base = seg.alloc(40 * 8, align=8)
    view = seg.view(base, np.int64, 40)
    view[:] = np.arange(40)
    idx = np.array([3, 0, 39, 17])
    assert list(seg.typed_read_indexed(base, np.int64, idx)) == [3, 0, 39, 17]
    seg.typed_write_indexed(base, idx, np.array([-1, -2, -3, -4]))
    assert view[3] == -1 and view[0] == -2 and view[39] == -3


def test_segment_indexed_bounds_and_alignment():
    seg = Segment(256)
    base = seg.alloc(8 * 8, align=8)
    with pytest.raises(BadPointer):
        seg.typed_read_indexed(base, np.int64, [8_000])
    with pytest.raises(BadPointer):
        seg.typed_read_indexed(base, np.int64, [-1])
    with pytest.raises(BadPointer):
        seg.typed_read_indexed(base + 1, np.int64, [0])


def test_segment_atomic_batch_duplicates_are_applied():
    """ufunc.at path: duplicate indices apply once each, unlike plain
    fancy assignment."""
    seg = Segment(256)
    base = seg.alloc(4 * 8, align=8)
    seg.view(base, np.int64, 4)[:] = 0
    seg.atomic_batch_update(base, np.int64, [2, 2, 2, 1], "add",
                            [10, 10, 10, 5])
    assert list(seg.view(base, np.int64, 4)) == [0, 5, 30, 0]


def test_segment_atomic_batch_swap_and_old_values():
    seg = Segment(256)
    base = seg.alloc(4 * 8, align=8)
    seg.view(base, np.int64, 4)[:] = [1, 2, 3, 4]
    old = seg.atomic_batch_update(base, np.int64, [0, 3], "swap",
                                  [9, 9], return_old=True)
    assert list(old) == [1, 4]
    assert list(seg.view(base, np.int64, 4)) == [9, 2, 3, 9]
    # duplicate swap: sequential semantics, last write wins
    old = seg.atomic_batch_update(base, np.int64, [1, 1], "swap",
                                  [7, 8], return_old=True)
    assert list(old) == [2, 7]
    assert seg.view(base, np.int64, 4)[1] == 8


# -- conduit fallback vs SMP fast path ----------------------------------

class _FallbackConduit(SmpConduit):
    """SMP transport but *without* the indexed overrides: resolves the
    indexed primitives through the base-class per-element fallback."""

    rma_put_indexed = Conduit.rma_put_indexed
    rma_get_indexed = Conduit.rma_get_indexed
    rma_atomic_batch = Conduit.rma_atomic_batch


def test_generic_fallback_matches_fast_path():
    def body():
        sa = repro.SharedArray(np.int64, size=40, block=3)
        mine = sa.local_indices()
        sa.local_view()[: len(mine)] = mine
        repro.barrier()
        if repro.myrank() == 0:
            idx = np.array([1, 5, 11, 38, 5])
            assert np.array_equal(sa.gather(idx), idx)
            sa.scatter([7, 19], [70, 190])
            assert sa[7] == 70 and sa[19] == 190
            old = sa.atomic_batch([7, 7], "add", [1, 1], return_old=True)
            assert list(old) == [70, 71]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3, conduit=_FallbackConduit()))


def test_fallback_counts_per_element_ops():
    """The fallback issues one scalar conduit op per element — visible in
    stats as zero batched ops (an honest no-coalescing signal)."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=16, block=1)
        repro.barrier()
        stats = repro.current_world().ranks[me].stats
        if me == 0:
            s0 = stats.snapshot()
            sa.gather([1, 2, 3])  # ranks 1, 2, 3 at block=1
            s1 = stats.snapshot()
            assert s1["gets"] - s0["gets"] == 3
            assert s1["gets_indexed"] == s0["gets_indexed"]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4, conduit=_FallbackConduit()))


def test_smp_batches_count_once_per_target():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=16, block=1)
        repro.barrier()
        stats = repro.current_world().ranks[me].stats
        if me == 0:
            s0 = stats.snapshot()
            sa.gather([1, 5, 9, 13])        # all rank 1
            sa.scatter([2, 6], [1, 1])      # all rank 2
            sa.atomic_batch([3, 7, 11], "add", 1)  # all rank 3
            s1 = stats.snapshot()
            assert s1["gets_indexed"] - s0["gets_indexed"] == 1
            assert s1["puts_indexed"] - s0["puts_indexed"] == 1
            assert s1["atomic_batches"] - s0["atomic_batches"] == 1
            assert s1["batched_elements"] - s0["batched_elements"] == 9
            assert stats.coalescing_ratio == pytest.approx(
                stats.batched_elements / stats.batched_ops
            )
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_stats_batched_counters_reset_and_aggregate():
    s = CommStats()
    s.record_get_indexed(10, 80)
    s.record_put_indexed(4, 32)
    s.record_atomic_batch(6)
    assert s.batched_ops == 3
    assert s.batched_elements == 20
    assert s.coalescing_ratio == pytest.approx(20 / 3)
    assert s.messages == 3
    assert s.remote_accesses == 20
    snap = s.snapshot()
    assert snap["gets_indexed"] == 1 and snap["batched_elements"] == 20
    s.reset()
    assert s.batched_ops == 0 and s.coalescing_ratio == 0.0


def test_trace_records_indexed_ops():
    def body():
        sa = repro.SharedArray(np.int64, size=16, block=1)
        repro.barrier()
        trace = None
        if repro.myrank() == 0:
            trace = Trace(repro.current_world())
            with trace:
                sa.gather([1, 5])
                sa.scatter([2, 6], [0, 0])
                sa.atomic_batch([3, 7], "xor", 1)
        repro.barrier()
        if trace is not None:
            assert trace.count(kind="get_indexed") == 1
            assert trace.count(kind="put_indexed") == 1
            assert trace.count(kind="atomic_batch") == 1
            assert trace.bytes(kind="get_indexed") == 2 * 8
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))
