"""Communication tracing tests."""

import numpy as np
import pytest

import repro
from repro.gasnet.trace import Trace
from tests.conftest import run_spmd


def test_trace_records_puts_and_gets():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        trace = Trace(repro.current_world()) if me == 0 else None
        repro.barrier()
        if me == 0:
            with trace:
                sa[1] = 7          # remote put (element 1 on rank 1)
                _ = sa[1]          # remote get
                _ = sa[0]          # local: not a conduit op
            assert trace.count(kind="put") == 1
            assert trace.count(kind="get") == 1
            assert trace.count(kind="put", dst=1) == 1
            assert trace.bytes(kind="put") == 8
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_records_am_handler_names():
    def body():
        me = repro.myrank()
        repro.barrier()
        if me == 0:
            trace = Trace(repro.current_world())
            with trace:
                repro.async_(1)(int, 5).get()
            kinds = [(ev.kind, ev.detail) for ev in trace.events
                     if ev.src == 0]
            assert ("am", "exec_task") in kinds
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_matrix_shows_ghost_pattern():
    """The stencil's comm matrix: nonzero only between face neighbours."""
    from repro.arrays import DistNdArray, RectDomain

    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1)
        D.interior_view()[:] = float(me)
        repro.barrier()
        trace = Trace(repro.current_world()) if me == 0 else None
        repro.barrier()
        if me == 0:
            with trace:
                # rank 0's halves of the exchange only; peers do theirs
                # outside the trace, which records *initiators*.
                for nbr_rank, offs in D.neighbors():
                    if sum(map(abs, offs)) != 1:
                        continue
                    halo = D._halo_region(offs)
                    D.local.constrict(halo).copy(D.remote(nbr_rank))
            partners = trace.partners(0)
            face_nbrs = {r for r, o in D.neighbors()
                         if sum(map(abs, o)) == 1}
            assert partners == face_nbrs
        repro.barrier()
        D.ghost_exchange(faces_only=True)  # leave world consistent
        return True

    assert all(run_spmd(body, ranks=4))


def test_trace_nesting_rejected():
    def body():
        if repro.myrank() == 0:
            trace = Trace(repro.current_world())
            with trace:
                with pytest.raises(RuntimeError):
                    trace.__enter__()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_uninstalls_cleanly():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 0:
            world = repro.current_world()
            original = world.conduit
            trace = Trace(world)
            with trace:
                sa[1] = 1
            assert world.conduit is original
            n_before = len(trace.events)
            sa[1] = 2  # after exit: not recorded
            assert len(trace.events) == n_before
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


class _Passthrough:
    """A minimal decorating conduit, as another subsystem would install."""

    def __init__(self, inner):
        self._inner = inner
        self.world = inner.world

    def __getattr__(self, name):
        return getattr(self._inner, name)


def test_trace_exit_restores_exact_conduit():
    """Exiting a Trace must splice out *its own* wrapper — not blindly
    pop the outermost layer, which may belong to someone else by then."""
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 0:
            world = repro.current_world()
            original = world.conduit
            trace = Trace(world)
            with trace:
                # Another decorator lands *inside* the with block and
                # stays installed after it.
                deco = _Passthrough(world.conduit)
                world.conduit = deco
                sa[1] = 1
            # The foreign decorator survives; the tracing layer is gone
            # from underneath it.
            assert world.conduit is deco
            assert deco._inner is original
            assert trace.count(kind="put") == 1
            world.conduit = original  # leave the world as found
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_exit_idempotent():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 0:
            world = repro.current_world()
            original = world.conduit
            trace = Trace(world)
            with pytest.raises(ValueError):
                with trace:
                    raise ValueError("boom")
            assert world.conduit is original
            trace.__exit__(None, None, None)  # second exit: no-op
            assert world.conduit is original
            sa[1] = 1  # the conduit still works
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_exit_noop_if_wrapper_already_removed():
    def body():
        if repro.myrank() == 0:
            world = repro.current_world()
            original = world.conduit
            trace = Trace(world)
            trace.__enter__()
            world.conduit = original  # someone force-uninstalled it
            trace.__exit__(None, None, None)
            assert world.conduit is original
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_select_filters_combine():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        out = True
        if me == 0:
            trace = Trace(repro.current_world())
            with trace:
                sa[1] = 1          # put -> rank 1
                sa[2] = 2          # put -> rank 2
                _ = sa[1]          # get -> rank 1
                sa.atomic(3, "add", 1)  # atomic -> rank 3
            assert trace.count() == 4
            assert trace.count(kind="put") == 2
            assert trace.count(dst=1) == 2
            assert trace.count(kind="put", dst=1) == 1
            assert trace.count(kind="get", src=0, dst=1) == 1
            assert trace.count(kind="atomic", dst=3) == 1
            assert trace.count(kind="put", dst=3) == 0
            assert [ev.dst for ev in trace.select(kind="put")] == [1, 2]
        repro.barrier()
        return out

    assert all(run_spmd(body, ranks=4))


def test_trace_matrix_and_partners_filter_by_kind():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        if me == 0:
            trace = Trace(repro.current_world())
            with trace:
                sa[1] = 1
                sa[1] = 2
                _ = sa[2]
            m_all = trace.matrix()
            assert m_all[0, 1] == 2 and m_all[0, 2] == 1
            assert m_all.sum() == 3
            m_put = trace.matrix(kind="put")
            assert m_put[0, 1] == 2 and m_put[0, 2] == 0
            assert trace.partners(0) == {1, 2}
            assert trace.partners(3) == set()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_control_events_reach_trace_through_reliable_chaos():
    """retransmit/dup_suppressed/chaos_* control events climb from the
    inner layers to the outermost conduit's ``trace_control`` hook."""
    from repro.gasnet import ChaosConduit

    def body():
        me, n = repro.myrank(), repro.ranks()
        repro.barrier()
        trace = Trace(repro.current_world()) if me == 0 else None
        repro.barrier()
        if me == 0:
            trace.__enter__()
        repro.barrier()
        for _ in range(15):
            with repro.finish():
                repro.async_((me + 1) % n)(abs, -1)
        repro.barrier()
        kinds = None
        if me == 0:
            trace.__exit__(None, None, None)
            kinds = {ev.kind for ev in trace.events}
        repro.barrier()
        return kinds

    conduit = ChaosConduit(seed=3, am_drop_rate=0.25, am_dup_rate=0.25,
                           am_reorder_rate=0.1)
    kinds = repro.spmd(body, ranks=2, conduit=conduit,
                       reliability={"seed": 3, "ack_timeout": 0.005},
                       timeout=30.0)[0]
    # Injected chaos and the reliability layer's reactions are all
    # visible alongside the ordinary op events.
    assert "am" in kinds
    assert "retransmit" in kinds
    assert "dup_suppressed" in kinds
    assert kinds & {"chaos_drop", "chaos_dup", "chaos_reorder"}


def test_trace_control_forwards_down_the_chain():
    """A stacked consumer below a Trace still receives control events
    (the telemetry flight recorder relies on this)."""
    def body():
        me = repro.myrank()
        repro.barrier()
        if me == 0:
            world = repro.current_world()
            seen = []

            class _Sink(_Passthrough):
                def trace_control(self, kind, src, dst, nbytes=0,
                                  detail=""):
                    seen.append(kind)

            original = world.conduit
            world.conduit = _Sink(original)
            trace = Trace(world)
            with trace:
                world.conduit.trace_control("retransmit", 0, 1)
            assert trace.count(kind="retransmit") == 1
            assert seen == ["retransmit"]
            world.conduit = original
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_timestamps_monotone():
    def body():
        if repro.myrank() == 0:
            trace = Trace(repro.current_world())
            sa = None
        sa_all = repro.SharedArray(np.int64, size=8, block=1)
        repro.barrier()
        if repro.myrank() == 0:
            with trace:
                for i in range(8):
                    sa_all[i] = i
            ts = [ev.t for ev in trace.events]
            assert ts == sorted(ts)
            assert all(t >= 0 for t in ts)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
