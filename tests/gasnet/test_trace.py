"""Communication tracing tests."""

import numpy as np
import pytest

import repro
from repro.gasnet.trace import Trace
from tests.conftest import run_spmd


def test_trace_records_puts_and_gets():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        trace = Trace(repro.current_world()) if me == 0 else None
        repro.barrier()
        if me == 0:
            with trace:
                sa[1] = 7          # remote put (element 1 on rank 1)
                _ = sa[1]          # remote get
                _ = sa[0]          # local: not a conduit op
            assert trace.count(kind="put") == 1
            assert trace.count(kind="get") == 1
            assert trace.count(kind="put", dst=1) == 1
            assert trace.bytes(kind="put") == 8
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_records_am_handler_names():
    def body():
        me = repro.myrank()
        repro.barrier()
        if me == 0:
            trace = Trace(repro.current_world())
            with trace:
                repro.async_(1)(int, 5).get()
            kinds = [(ev.kind, ev.detail) for ev in trace.events
                     if ev.src == 0]
            assert ("am", "exec_task") in kinds
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_matrix_shows_ghost_pattern():
    """The stencil's comm matrix: nonzero only between face neighbours."""
    from repro.arrays import DistNdArray, RectDomain

    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1)
        D.interior_view()[:] = float(me)
        repro.barrier()
        trace = Trace(repro.current_world()) if me == 0 else None
        repro.barrier()
        if me == 0:
            with trace:
                # rank 0's halves of the exchange only; peers do theirs
                # outside the trace, which records *initiators*.
                for nbr_rank, offs in D.neighbors():
                    if sum(map(abs, offs)) != 1:
                        continue
                    halo = D._halo_region(offs)
                    D.local.constrict(halo).copy(D.remote(nbr_rank))
            partners = trace.partners(0)
            face_nbrs = {r for r, o in D.neighbors()
                         if sum(map(abs, o)) == 1}
            assert partners == face_nbrs
        repro.barrier()
        D.ghost_exchange(faces_only=True)  # leave world consistent
        return True

    assert all(run_spmd(body, ranks=4))


def test_trace_nesting_rejected():
    def body():
        if repro.myrank() == 0:
            trace = Trace(repro.current_world())
            with trace:
                with pytest.raises(RuntimeError):
                    trace.__enter__()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_uninstalls_cleanly():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 0:
            world = repro.current_world()
            original = world.conduit
            trace = Trace(world)
            with trace:
                sa[1] = 1
            assert world.conduit is original
            n_before = len(trace.events)
            sa[1] = 2  # after exit: not recorded
            assert len(trace.events) == n_before
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_trace_timestamps_monotone():
    def body():
        if repro.myrank() == 0:
            trace = Trace(repro.current_world())
            sa = None
        sa_all = repro.SharedArray(np.int64, size=8, block=1)
        repro.barrier()
        if repro.myrank() == 0:
            with trace:
                for i in range(8):
                    sa_all[i] = i
            ts = [ev.t for ev in trace.events]
            assert ts == sorted(ts)
            assert all(t >= 0 for t in ts)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
