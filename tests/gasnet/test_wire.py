"""Wire codec: round-trip properties, buffer semantics, zero-pickle paths.

The encoder's contract is *by-value delivery*: ``decode(encode(x))``
compares equal to ``x``, preserves the exact type for every supported
builtin, and never aliases a mutable buffer the sender could touch
afterwards.  Fixed-layout paths (registered message codecs, tagged
scalars/sequences, ndarray/bytes payloads) must not invoke pickle at
all — asserted here with a counting stub threaded under the codec
module.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.gasnet.wire import (
    EncodedPayload,
    Tagged,
    UnencodableError,
    preencode,
    tagged,
)
from repro.gasnet.wire import codecs as codecs_mod
from tests.conftest import run_spmd


def roundtrip(obj):
    return preencode(obj).decode()


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------

# Scalars whose round trip must preserve equality AND exact type.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 200), max_value=1 << 200),
    st.floats(allow_nan=False),
    st.complex_numbers(allow_nan=False),
    st.text(max_size=64),
    st.binary(max_size=200),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=8),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=24,
)


@settings(max_examples=150, deadline=None)
@given(values)
def test_roundtrip_preserves_value_and_type(obj):
    out = roundtrip(obj)
    assert out == obj
    assert type(out) is type(obj)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-(1 << 62), max_value=1 << 62),
                min_size=0, max_size=64))
def test_int_sequence_fast_path(xs):
    for seq in (xs, tuple(xs)):
        out = roundtrip(seq)
        assert out == seq and type(out) is type(seq)
        assert all(type(v) is int for v in out)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(allow_nan=False), max_size=64))
def test_float_sequence_fast_path(xs):
    out = roundtrip(xs)
    assert out == xs and all(type(v) is float for v in out)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(max_size=32), max_size=32))
def test_str_sequence_fast_path(xs):
    assert roundtrip(xs) == xs


@settings(max_examples=40, deadline=None)
@given(st.lists(st.one_of(st.booleans(),
                          st.integers(min_value=-10, max_value=10)),
                min_size=1, max_size=20))
def test_bool_int_mixtures_keep_exact_types(xs):
    # struct.pack would happily coerce True -> 1; the classifier must
    # route any bool-containing "int" sequence off the packed path.
    out = roundtrip(xs)
    assert out == xs
    assert [type(v) for v in out] == [type(v) for v in xs]


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from([np.int8, np.int32, np.int64, np.float32, np.float64,
                     np.complex128, np.uint16]),
    st.integers(min_value=0, max_value=50),
)
def test_ndarray_roundtrip(dtype, n):
    arr = np.arange(n).astype(dtype)
    out = roundtrip(arr)
    assert out.dtype == arr.dtype and out.shape == arr.shape
    np.testing.assert_array_equal(out, arr)


# ---------------------------------------------------------------------------
# ndarray / buffer edge cases
# ---------------------------------------------------------------------------

def test_ndarray_noncontiguous():
    base = np.arange(100, dtype=np.int64).reshape(10, 10)
    for view in (base[::2, ::3], base.T, base[:, 4]):
        out = roundtrip(view)
        np.testing.assert_array_equal(out, view)
        assert out.shape == view.shape


def test_ndarray_zero_length_and_0d():
    for arr in (np.empty(0, dtype=np.float64),
                np.zeros((0, 4), dtype=np.int32),
                np.array(7.5)):
        out = roundtrip(arr)
        assert out.shape == arr.shape and out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)


def test_ndarray_big_endian_dtype():
    arr = np.arange(9, dtype=">i4")
    out = roundtrip(arr)
    assert out.dtype == arr.dtype
    np.testing.assert_array_equal(out, arr)


def test_ndarray_object_dtype_falls_back_to_pickle():
    arr = np.array([{"a": 1}, None, "x"], dtype=object)
    out = roundtrip(arr)
    assert out.dtype == object
    assert list(out) == list(arr)


def test_decoded_ndarray_is_writable_and_private():
    src = np.arange(64, dtype=np.float64)
    ep = preencode(src)
    src[:] = -1.0            # sender mutates after encode
    out = ep.decode()
    np.testing.assert_array_equal(out, np.arange(64, dtype=np.float64))
    out[:] = 5.0             # decoded copy is writable
    assert ep.decode()[0] == 0.0  # ...and private per decode


def test_large_bytes_are_zero_copy_out_of_band():
    blob = bytes(range(256)) * 64          # 16 KiB, > inline threshold
    ep = preencode(blob)
    assert ep.nbytes >= len(blob)
    assert len(ep.ctrl) < 256              # control stream stays tiny
    assert ep.decode() == blob


def test_bytearray_snapshot_semantics():
    buf = bytearray(b"x" * 1000)
    ep = preencode(buf)
    buf[:] = b"y" * 1000                   # mutate after encode
    out = ep.decode()
    assert out == bytearray(b"x" * 1000)   # snapshot, not alias
    assert isinstance(out, bytearray)


def test_memoryview_payload_decodes_as_bytes():
    data = bytes(range(200)) * 2
    out = roundtrip(memoryview(data))
    assert out == data and isinstance(out, bytes)
    # writable memoryviews are snapshotted, never aliased
    src = bytearray(b"live" * 100)
    ep = preencode(memoryview(src))
    src[:4] = b"dead"
    assert ep.decode()[:4] == b"live"


def test_dict_and_set_via_pickle5_roundtrip():
    obj = {"k": {1, 2, 3}, "f": frozenset({"a"}), "n": [np.arange(4)]}
    out = roundtrip(obj)
    assert out["k"] == {1, 2, 3} and out["f"] == frozenset({"a"})
    np.testing.assert_array_equal(out["n"][0], np.arange(4))


def test_np_scalar_roundtrip():
    for v in (np.int32(-7), np.float64(2.5), np.complex128(1 + 2j),
              np.uint8(255)):
        out = roundtrip(v)
        assert out == v and out.dtype == v.dtype


# ---------------------------------------------------------------------------
# fallback + strict behaviour
# ---------------------------------------------------------------------------

def test_unpicklable_falls_back_to_reference():
    fn = lambda x: x + 1          # noqa: E731 - deliberately unpicklable
    ep = preencode(("call", fn))
    tag, out = ep.decode()
    assert tag == "call" and out is fn   # identity: shipped by reference


def test_strict_mode_raises_on_unencodable():
    with pytest.raises(UnencodableError):
        preencode(lambda: None, strict=True)


def test_exceptions_ship_by_reference():
    class Weird(Exception):
        def __init__(self, a, b):      # breaks naive pickle re-raise
            super().__init__(a)

    exc = Weird(1, 2)
    assert roundtrip(exc) is exc


def test_namedtuple_preserves_subclass_via_pickle():
    import collections
    Pt = collections.namedtuple("Pt", "x y")
    out = roundtrip(Pt(1, 2))
    assert out == Pt(1, 2) and type(out).__name__ == "Pt"


def test_encoded_payload_decodes_fresh_each_time():
    ep = preencode([1, [2, 3]])
    a, b = ep.decode(), ep.decode()
    assert a == b and a is not b and a[1] is not b[1]


# ---------------------------------------------------------------------------
# registered message codecs
# ---------------------------------------------------------------------------

def _codec_roundtrip(name, obj):
    codec = codecs_mod._codecs_by_name[name]
    enc = codecs_mod.Encoder()
    codec.encode(enc, obj)
    dec = codecs_mod.Decoder(memoryview(bytes(enc.out)), 0,
                             enc.buffers, enc.refs, copy=True)
    return codec.decode(dec), enc


@pytest.mark.parametrize("items", [
    {}, {"k": 1}, {b"a": b"v" * 500, 3: [1, 2], "s": "t"},
])
def test_kv_items_codec(items):
    out, _ = _codec_roundtrip("kv_items", items)
    assert out == items


@pytest.mark.parametrize("found", [
    [], [(True, 42)], [(True, b"x" * 300), (False, None), (True, "v")],
])
def test_kv_found_codec(found):
    out, _ = _codec_roundtrip("kv_found", found)
    assert out == found


def test_wq_loot_codec_int_fast_path():
    loot = list(range(100))
    out, enc = _codec_roundtrip("wq_loot", loot)
    assert out == loot
    assert not enc.used_pickle


def test_register_message_codec_duplicate_rejected():
    with pytest.raises(Exception):
        codecs_mod.register_message_codec(
            "kv_items", lambda e, o: None, lambda d: None
        )


def test_tagged_wrapper():
    t = tagged("wq_loot", [1, 2])
    assert isinstance(t, Tagged)
    assert t.codec.name == "wq_loot" and t.obj == [1, 2]


# ---------------------------------------------------------------------------
# zero-pickle integration: fixed-layout paths across a real world
# ---------------------------------------------------------------------------

class _CountingPickle:
    def __init__(self, real):
        self._real = real
        self.dumps_calls = 0

    def dumps(self, *a, **kw):
        self.dumps_calls += 1
        return self._real.dumps(*a, **kw)

    def __getattr__(self, name):
        return getattr(self._real, name)


@pytest.fixture
def pickle_counter(monkeypatch):
    counter = _CountingPickle(codecs_mod.pickle)
    monkeypatch.setattr(codecs_mod, "pickle", counter)
    return counter


def test_kv_fixed_layout_path_never_pickles(pickle_counter):
    """kv put/get/delete/multi with str-or-int keys and bytes/int values
    stay entirely on the struct/buffer codecs."""
    from repro.containers import DistHashMap

    def body():
        me = repro.myrank()
        m = DistHashMap(cache=False)
        m.put(me, b"blob" * 100)
        m.put(f"k{me}", me * 10)
        repro.barrier()
        for r in range(repro.ranks()):
            assert m.get(r) == b"blob" * 100
            assert m.get(f"k{r}") == r * 10
        m.multi_put({(f"mk{me}:{i}"): i for i in range(16)})
        repro.barrier()
        vals = m.multi_get([f"mk{r}:{i}"
                            for r in range(repro.ranks())
                            for i in range(16)])
        assert vals
        assert m.delete(me) is True
        repro.barrier()
        from repro.core.world import current
        return current().stats.snapshot()

    snaps = run_spmd(body, ranks=3)
    assert pickle_counter.dumps_calls == 0
    assert sum(s["wire_frames"] for s in snaps) > 0
    assert sum(s["pickle_fallbacks"] for s in snaps) == 0


def test_workqueue_steal_loot_never_pickles(pickle_counter):
    from repro.core.workqueue import DistWorkQueue

    def body():
        wq = DistWorkQueue(seed=7)
        if repro.myrank() == 0:
            wq.add_local(list(range(200)))
        repro.barrier()
        got = []
        while (item := wq.get()) is not None:
            got.append(item)
            wq.task_done()
        return len(got)

    counts = run_spmd(body, ranks=3)
    assert sum(counts) == 200
    assert pickle_counter.dumps_calls == 0


def test_collective_data_frames_never_pickle_scalars_or_arrays(
        pickle_counter):
    from repro.core import collectives

    # Scalar/ndarray/float-list collective data frames are fixed-layout
    # (gather is excluded: it ships {rank: value} dicts, which use the
    # pickle-5 fallback by design).
    def body():
        me = repro.myrank()
        s = collectives.allreduce(me + 1, op="sum")
        arr = collectives.allreduce(np.full(8, me, dtype=np.int64),
                                    op="sum")
        b = collectives.bcast([1.5, 2.5] if me == 0 else None, root=0)
        return s, arr, b

    n = 3
    out = run_spmd(body, ranks=n)
    assert all(s == n * (n + 1) // 2 for s, *_ in out)
    np.testing.assert_array_equal(out[0][1], np.full(8, sum(range(n))))
    assert out[0][2] == [1.5, 2.5]
    assert pickle_counter.dumps_calls == 0


def test_wire_fixed_rate_observable():
    def body():
        from repro.core.world import current
        ctx = current()
        if repro.myrank() == 0:
            fut = ctx.send_am(1, "wq_steal", args=(999,),
                              expect_reply=True)
            fut.get()
        repro.barrier()
        return ctx.stats.wire_fixed_rate, ctx.stats.snapshot()

    rates = run_spmd(body, ranks=2)
    rate0, snap0 = rates[0]
    assert snap0["wire_frames"] > 0
    assert rate0 == 1.0
