"""Property tests: DistHashMap vs a plain-dict model, and exactly-once
``update()`` under an adversarial conduit.

The model check executes a random op sequence in a barrier-stepped
total order (op ``i`` runs on rank ``i % n``) while *every* rank
maintains the same plain-dict model; after the sequence each rank
verifies the full keyspace through ``multi_get`` (after a ``refresh``
fence — reads between fences may legitimately be stale, so only fenced
reads are asserted against the model).
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.containers import DistHashMap
from repro.core import collectives
from repro.gasnet import ChaosConduit
from tests.conftest import run_spmd

KEYS = [f"k{i}" for i in range(8)]

_op = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS),
              st.integers(-100, 100)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS), st.none()),
    st.tuples(st.just("update"), st.sampled_from(KEYS),
              st.integers(1, 9)),
    st.tuples(st.just("multi_put"),
              st.lists(st.tuples(st.sampled_from(KEYS),
                                 st.integers(-100, 100)),
                       min_size=1, max_size=4),
              st.none()),
)


@settings(max_examples=12, deadline=None)
@given(ops=st.lists(_op, max_size=12))
def test_matches_dict_model(ops):
    def body():
        me = repro.myrank()
        n = repro.ranks()
        m = DistHashMap(cache=True)
        model: dict = {}
        for i, (kind, arg, extra) in enumerate(ops):
            if i % n == me:  # this rank executes the op...
                if kind == "put":
                    m.put(arg, extra)
                elif kind == "delete":
                    m.delete(arg)
                elif kind == "update":
                    m.update(arg, "add", extra, default=0)
                elif kind == "multi_put":
                    m.multi_put(arg)
            # ...every rank steps the model identically.
            if kind == "put":
                model[arg] = extra
            elif kind == "delete":
                model.pop(arg, None)
            elif kind == "update":
                model[arg] = model.get(arg, 0) + extra
            elif kind == "multi_put":
                model.update(dict(arg))
            collectives.barrier()  # total order between ops
        m.refresh()  # fence: cached reads below must be current
        got = m.multi_get(KEYS, default=None)
        want = [model.get(k) for k in KEYS]
        assert got == want, (got, want)
        for k in KEYS:  # point gets agree too (cache path)
            assert m.get(k, default=None) == model.get(k)
        size = m.size()
        assert size == len(model), (size, model)
        return True

    assert all(run_spmd(body, ranks=3))


def test_update_exactly_once_under_chaos():
    """The acceptance gate: concurrent read-modify-writes through
    ``ReliableConduit(ChaosConduit)`` — drops force client retries,
    dups replay requests — must apply exactly once each."""
    per_rank = 25

    def body():
        m = DistHashMap(cache=True)
        for i in range(per_rank):
            m.update("counter", "add", 1, default=0)
            m.update(("slot", repro.myrank()), "add", i, default=0)
        repro.barrier()
        m.refresh()
        total = m.get("counter")
        mine = m.get(("slot", repro.myrank()))
        assert mine == sum(range(per_rank)), mine
        repro.barrier()
        return total

    conduit = ChaosConduit(seed=0, am_drop_rate=0.1, am_dup_rate=0.1,
                           am_reorder_rate=0.1)
    totals = run_spmd(body, ranks=3, conduit=conduit,
                      reliability={"seed": 0}, timeout=120.0)
    assert all(t == 3 * per_rank for t in totals), totals


def test_multi_ops_complete_under_chaos():
    """Batched ops retry per-owner on loss and still return aligned,
    correct results."""
    def body():
        me = repro.myrank()
        m = DistHashMap(cache=False)
        m.multi_put({(me, i): me * 100 + i for i in range(20)})
        repro.barrier()
        keys = [(r, i) for r in range(repro.ranks()) for i in range(20)]
        vals = m.multi_get(keys)
        assert vals == [r * 100 + i for r, i in keys]
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=3, am_drop_rate=0.08, am_dup_rate=0.08)
    assert all(run_spmd(body, ranks=3, conduit=conduit,
                        reliability={"seed": 3}, timeout=120.0))
