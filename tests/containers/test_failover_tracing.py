"""Observability of the failover path: a failover chain is ONE causal
trace, and the RankDead auto-dump includes the victim's final events.

Same fixed-seed deterministic-kill recipe as ``test_failover.py``: the
only injected fault is the ``kill_rank`` partition, the victim parks as
a zombie, and post-kill rendezvous uses shared-memory flags.
"""

from __future__ import annotations

import re

import pytest

import repro
from repro.containers import DistHashMap
from repro.containers.hashmap import shard_of
from repro.errors import PgasError
from repro.gasnet import ChaosConduit


RELIABILITY = {"seed": 0, "peer_timeout": 0.3, "heartbeat_period": 0.01,
               "op_deadline": 3.0}


def _key_on_shard(sid: int, nshards: int, prefix: str = "k") -> str:
    return next(f"{prefix}{i}" for i in range(10_000)
                if shard_of(f"{prefix}{i}", nshards) == sid)


def _sync_shared(ctx, ready, n):
    ready[ctx.rank] = True
    ctx.world.poke_all()
    ctx.wait_until(lambda: all(ready[r] for r in range(n)),
                   what="test: past-the-barrier rendezvous")


def test_failover_chain_is_one_causal_trace():
    """kill primary -> client put blocks -> RankDead -> failover ->
    retry -> promotion on the backup: every link must carry the trace
    id of the *triggering client op*, across rank boundaries."""
    victim = 1
    flags = {"killed": False, "recovered": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder: dict = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        if me == 0:
            holder["world"] = repro.current_world()
        m = DistHashMap(replicas=1)
        for i in range(8):
            m.put((me, i), i)
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            holder["conduit"].kill_rank(me)
            flags["killed"] = True
            ctx.wait_until(
                lambda: all(done[r] for r in range(n) if r != victim),
                what="test: partitioned victim parks",
            )
            return None
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        if me == 0:
            # The one triggering client op: a put whose primary is dead.
            # Only rank 0 drives recovery, so the promotion on the
            # backup is unambiguously attributable to THIS op's trace.
            key = _key_on_shard(victim, n, prefix="fo")
            m.put(key, "recovered")
            assert m.get(key) == "recovered"
            flags["recovered"] = True
        ctx.wait_until(lambda: flags["recovered"], what="wait recovery")
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        return True

    conduit = ChaosConduit(seed=21)
    holder["conduit"] = conduit
    res = repro.spmd(body, ranks=4, conduit=conduit,
                     reliability=dict(RELIABILITY, seed=21),
                     survive_rank_death=True, telemetry="full",
                     timeout=30.0)
    assert all(r for r in res if r is not None)

    world = holder["world"]
    by_kind: dict[str, list] = {}
    for rt in world.telemetry.ranks:
        for ev in rt.flight.snapshot():
            by_kind.setdefault(ev.kind, []).append(ev)
    for kind in ("kv_failover_start", "kv_failover", "kv_promote"):
        assert by_kind.get(kind), f"missing {kind} flight event"
        assert any(ev.trace_id for ev in by_kind[kind]), \
            f"{kind} should carry the client op's trace id"
    # one trace id threads the whole chain
    chains = (
        {ev.trace_id for ev in by_kind["kv_failover_start"] if ev.trace_id}
        & {ev.trace_id for ev in by_kind["kv_failover"] if ev.trace_id}
        & {ev.trace_id for ev in by_kind["kv_promote"] if ev.trace_id}
    )
    assert chains, "failover chain fragmented across trace ids"
    # ... and that trace really crossed ranks: the client's root span
    # on rank 0 plus handler work on the promoted backup.
    trace = next(iter(chains))
    span_ranks = {s.rank for s in world.telemetry.all_spans()
                  if s.trace_id == trace}
    assert 0 in span_ranks and len(span_ranks) >= 2
    root = [s for s in world.telemetry.all_spans()
            if s.trace_id == trace and s.name == "kv_put"
            and s.parent_id == 0]
    assert root and root[0].rank == 0


def test_rankdead_mid_multi_put_dump_includes_victims_final_events(capsys):
    """Unreplicated map, primary killed while batched multi_puts are in
    flight: the RankDead that propagates out of spmd must auto-dump a
    merged flight recorder that (a) contains the victim's last recorded
    events, (b) splices the ``chaos_kill`` instant inline, and (c) is
    globally time-ordered."""
    victim = 1
    flags = {"killed": False}
    ready = {r: False for r in range(4)}
    holder: dict = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=0)
        repro.barrier()
        for i in range(4):
            m.put(f"pre{me}:{i}", i)
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            holder["conduit"].kill_rank(me)
            # the victim's final ring entry, written right before it
            # goes dark — the merged dump must still show it
            ctx.telemetry.flight_event(
                "victim_last_words", src=me, dst=-1,
                detail="partitioned mid-batch")
            flags["killed"] = True
            try:
                ctx.wait_until(lambda: False, what="victim parks")
            except BaseException:
                return None
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        # batches span every shard, including the dead primary's
        for round_ in range(4):
            m.multi_put({f"mid{me}:{round_}:{i}": i for i in range(16)})
        return True

    conduit = ChaosConduit(seed=22)
    holder["conduit"] = conduit
    with pytest.raises(PgasError):
        repro.spmd(body, ranks=4, conduit=conduit,
                   reliability=dict(RELIABILITY, seed=22),
                   telemetry="flight", timeout=30.0)
    err = capsys.readouterr().err
    assert "FLIGHT RECORDER DUMP" in err
    assert f"rank {victim}" in err
    assert "victim_last_words" in err          # (a) victim's final event
    assert "chaos_kill" in err                 # (b) bridged fault instant
    times = [float(m.group(1)) for m in
             re.finditer(r"^\[\s*(-?[0-9.]+) ms\]", err, re.M)]
    assert len(times) > 4
    assert times == sorted(times)              # (c) one merged timeline
    # the kill instant precedes the victim's last words in the timeline
    lines = [ln for ln in err.splitlines() if ln.startswith("[")]
    k = next(i for i, ln in enumerate(lines) if "chaos_kill" in ln)
    w = next(i for i, ln in enumerate(lines) if "victim_last_words" in ln)
    assert k < w
