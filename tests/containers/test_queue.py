"""DistQueue: FIFO/bag semantics, remote push, stealing, reliability."""

import pytest

import repro
from repro.containers import DistQueue
from repro.core import collectives
from repro.errors import PgasError
from repro.gasnet import ChaosConduit
from tests.conftest import run_spmd


def test_local_fifo_order():
    def body():
        q = DistQueue()
        if repro.myrank() == 0:
            q.put_many(["a", "b", "c"])
            got = [q.get(), q.get(), q.get()]
            assert got == ["a", "b", "c"]  # local pops preserve FIFO
        repro.barrier()
        assert q.get() is None
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_push_lands_on_target():
    def body():
        me = repro.myrank()
        q = DistQueue()
        if me == 0:
            for r in range(1, repro.ranks()):
                q.put(("job", r), to=r)
            assert q.pushed_remote == repro.ranks() - 1
        repro.barrier()
        if me != 0:
            assert q.local_size() == 1
            assert q.get(max_steal_rounds=1) == ("job", me)
        repro.barrier()
        # Drain to quiesce so every rank's final get() agrees.
        while q.get() is not None:
            pass
        assert q.outstanding() == 0
        return True

    assert all(run_spmd(body, ranks=4))


def test_single_producer_all_consume_exactly_once():
    """One rank seeds everything; stealing spreads it; the union of the
    claims is exactly the seeded set."""
    def body():
        me = repro.myrank()
        q = DistQueue()
        n_items = 60
        if me == 0:
            q.put_many(list(range(n_items)))
        repro.barrier()
        got = []
        while (it := q.get()) is not None:
            got.append(it)
        all_got = collectives.gather(got, root=0)
        if me == 0:
            flat = sorted(x for chunk in all_got for x in chunk)
            assert flat == list(range(n_items))  # exactly once, no loss
        repro.barrier()
        return len(got)

    counts = run_spmd(body, ranks=4)
    assert sum(counts) == 60


def test_explicit_ack_mode():
    def body():
        me = repro.myrank()
        q = DistQueue(auto_ack=False)
        if me == 0:
            q.put_many([1, 2])
        repro.barrier()
        if me == 0:
            a = q.get(max_steal_rounds=1)
            assert a is not None
            assert q.outstanding() == 2  # claimed but not acked
            q.task_done()
            b = q.get(max_steal_rounds=1)
            q.task_done()
            assert {a, b} == {1, 2}
            with pytest.raises(PgasError):
                q.task_done(0)
        repro.barrier()
        assert q.get() is None  # quiesced for everyone
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_push_exactly_once_under_chaos():
    """Pushed items survive drops/dups/reorders without loss or
    duplication: the reliable layer dedups the push AM and the producer
    bumps the quiesce counter with an exactly-once atomic."""
    def body():
        me = repro.myrank()
        q = DistQueue()
        per_rank = 10
        for i in range(per_rank):
            q.put((me, i), to=(me + 1) % repro.ranks())
        repro.barrier()
        got = []
        while (it := q.get()) is not None:
            got.append(it)
        all_got = collectives.gather(got, root=0)
        if me == 0:
            flat = sorted(x for chunk in all_got for x in chunk)
            want = sorted((r, i) for r in range(repro.ranks())
                          for i in range(per_rank))
            assert flat == want
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=7, am_drop_rate=0.08, am_dup_rate=0.08,
                           am_reorder_rate=0.08)
    assert all(run_spmd(body, ranks=3, conduit=conduit,
                        reliability={"seed": 7}, timeout=60.0))
