"""DistQueue: FIFO/bag semantics, remote push, stealing, reliability."""

import pytest

import repro
from repro.containers import DistQueue
from repro.core import collectives
from repro.errors import PgasError, RankDead
from repro.gasnet import ChaosConduit
from tests.conftest import run_spmd


def test_local_fifo_order():
    def body():
        q = DistQueue()
        if repro.myrank() == 0:
            q.put_many(["a", "b", "c"])
            got = [q.get(), q.get(), q.get()]
            assert got == ["a", "b", "c"]  # local pops preserve FIFO
        repro.barrier()
        assert q.get() is None
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_push_lands_on_target():
    def body():
        me = repro.myrank()
        q = DistQueue()
        if me == 0:
            for r in range(1, repro.ranks()):
                q.put(("job", r), to=r)
            assert q.pushed_remote == repro.ranks() - 1
        repro.barrier()
        if me != 0:
            assert q.local_size() == 1
            assert q.get(max_steal_rounds=1) == ("job", me)
        repro.barrier()
        # Drain to quiesce so every rank's final get() agrees.
        while q.get() is not None:
            pass
        assert q.outstanding() == 0
        return True

    assert all(run_spmd(body, ranks=4))


def test_single_producer_all_consume_exactly_once():
    """One rank seeds everything; stealing spreads it; the union of the
    claims is exactly the seeded set."""
    def body():
        me = repro.myrank()
        q = DistQueue()
        n_items = 60
        if me == 0:
            q.put_many(list(range(n_items)))
        repro.barrier()
        got = []
        while (it := q.get()) is not None:
            got.append(it)
        all_got = collectives.gather(got, root=0)
        if me == 0:
            flat = sorted(x for chunk in all_got for x in chunk)
            assert flat == list(range(n_items))  # exactly once, no loss
        repro.barrier()
        return len(got)

    counts = run_spmd(body, ranks=4)
    assert sum(counts) == 60


def test_explicit_ack_mode():
    def body():
        me = repro.myrank()
        q = DistQueue(auto_ack=False)
        if me == 0:
            q.put_many([1, 2])
        repro.barrier()
        if me == 0:
            a = q.get(max_steal_rounds=1)
            assert a is not None
            assert q.outstanding() == 2  # claimed but not acked
            q.task_done()
            b = q.get(max_steal_rounds=1)
            q.task_done()
            assert {a, b} == {1, 2}
            with pytest.raises(PgasError):
                q.task_done(0)
        repro.barrier()
        assert q.get() is None  # quiesced for everyone
        return True

    assert all(run_spmd(body, ranks=2))


def test_remote_push_exactly_once_under_chaos():
    """Pushed items survive drops/dups/reorders without loss or
    duplication: the reliable layer dedups the push AM and the producer
    bumps the quiesce counter with an exactly-once atomic."""
    def body():
        me = repro.myrank()
        q = DistQueue()
        per_rank = 10
        for i in range(per_rank):
            q.put((me, i), to=(me + 1) % repro.ranks())
        repro.barrier()
        got = []
        while (it := q.get()) is not None:
            got.append(it)
        all_got = collectives.gather(got, root=0)
        if me == 0:
            flat = sorted(x for chunk in all_got for x in chunk)
            want = sorted((r, i) for r in range(repro.ranks())
                          for i in range(per_rank))
            assert flat == want
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=7, am_drop_rate=0.08, am_dup_rate=0.08,
                           am_reorder_rate=0.08)
    assert all(run_spmd(body, ranks=3, conduit=conduit,
                        reliability={"seed": 7}, timeout=60.0))


_RELIABILITY = {"seed": 0, "peer_timeout": 0.3, "heartbeat_period": 0.01,
                "op_deadline": 3.0}


def test_push_to_dead_rank_diagnostic_and_quiesce():
    """A push to a dead rank fails with a diagnostic naming the target,
    the item count, and the queue — and does NOT bump the quiesce
    counter, so the pool still quiesces for the survivors."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        q = DistQueue()
        repro.barrier()
        ready[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(ready[r] for r in range(n)),
                       what="test: past-the-barrier rendezvous")
        if me == victim:
            holder["conduit"].kill_rank(me)
            flags["killed"] = True
            ctx.wait_until(lambda: all(done[r] for r in range(n)
                                       if r != victim),
                           what="test: partitioned victim parks")
            return None
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        ctx.wait_until(lambda: victim in ctx.world.dead_ranks,
                       what="victim declared dead")
        if me == 0:
            before = q.outstanding()
            with pytest.raises(RankDead) as ei:
                q.put_many([("lost", i) for i in range(3)], to=victim)
            msg = str(ei.value)
            assert f"rank {victim}" in msg
            assert "3 item(s)" in msg and str(q.qid) in msg
            assert q.outstanding() == before  # no phantom items
            assert q.pushed_remote == 0
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        assert q.get(max_steal_rounds=1) is None  # quiesced
        return True

    conduit = ChaosConduit(seed=11)
    holder["conduit"] = conduit
    res = run_spmd(body, ranks=4, conduit=conduit,
                   reliability=dict(_RELIABILITY, seed=11),
                   survive_rank_death=True)
    assert all(r for r in res if r is not None)


def test_queue_exactly_once_under_kill():
    """Acked pushes between survivors are consumed exactly once even
    with a rank dying mid-stream; steals skip the dead rank instead of
    crashing the drain loop."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    got_all = {r: [] for r in range(4)}
    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        q = DistQueue()
        survivors = [r for r in range(n) if r != victim]
        repro.barrier()
        ready[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(ready[r] for r in range(n)),
                       what="test: past-the-barrier rendezvous")
        if me == victim:
            holder["conduit"].kill_rank(me)
            flags["killed"] = True
            ctx.wait_until(lambda: all(done[r] for r in survivors),
                           what="test: partitioned victim parks")
            return None
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        ctx.wait_until(lambda: victim in ctx.world.dead_ranks,
                       what="victim declared dead")
        # push a batch to the next *live* rank; every push here is acked
        nxt = survivors[(survivors.index(me) + 1) % len(survivors)]
        per_rank = 8
        q.put_many([(me, i) for i in range(per_rank)], to=nxt)
        while (it := q.get()) is not None:  # unbounded steal rounds
            got_all[me].append(it)
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in survivors),
                       what="rendezvous")
        if me == 0:
            flat = sorted(x for r in survivors for x in got_all[r])
            want = sorted((r, i) for r in survivors
                          for i in range(per_rank))
            assert flat == want  # exactly once: no loss, no dups
        assert q.outstanding() == 0
        return True

    conduit = ChaosConduit(seed=12)
    holder["conduit"] = conduit
    res = run_spmd(body, ranks=4, conduit=conduit,
                   reliability=dict(_RELIABILITY, seed=12),
                   survive_rank_death=True)
    assert all(r for r in res if r is not None)
