"""DistHashMap: sharding, point ops, batching, cache, telemetry."""

import pickle
import zlib

import pytest

import repro
from repro.containers import DistHashMap, shard_of
from repro.core import collectives
from repro.errors import PgasError
from tests.conftest import run_spmd


def test_shard_of_stable_and_in_range():
    for key in ["a", ("k", 3), 17, b"bytes", frozenset({1, 2}), -5,
                1 << 80, ""]:
        owner = shard_of(key, 4)
        assert 0 <= owner < 4
        assert owner == shard_of(key, 4)  # deterministic
    # str/bytes/int hash their raw bytes — no pickling on the hot path.
    assert shard_of("a", 4) == zlib.crc32(b"a") % 4
    assert shard_of(b"bytes", 4) == zlib.crc32(b"bytes") % 4
    assert shard_of(17, 4) == zlib.crc32(
        (17).to_bytes(1, "little", signed=True)) % 4
    # Everything else keeps the pickled-crc32 fallback, so existing
    # placements of exotic keys are unchanged.
    for key in [("k", 3), frozenset({1, 2}), None, 3.5]:
        assert shard_of(key, 4) == \
            zlib.crc32(pickle.dumps(key, protocol=4)) % 4


def test_put_get_delete_roundtrip(nranks):
    def body():
        me = repro.myrank()
        m = DistHashMap()
        m.put(("user", me), {"rank": me})
        repro.barrier()
        for r in range(repro.ranks()):
            assert m.get(("user", r)) == {"rank": r}
        with pytest.raises(KeyError):
            m.get("absent")
        assert m.get("absent", default=0) == 0
        repro.barrier()
        if me == 0:
            assert m.delete(("user", 0)) is True
            assert m.delete(("user", 0)) is False
        repro.barrier()
        m.refresh()
        assert m.get(("user", 0), default="gone") == "gone"
        assert m.size() == repro.ranks() - 1
        return True

    assert all(run_spmd(body, ranks=nranks))


def test_values_cross_ranks_by_value():
    """Mutating a value after put (or the returned value after get) must
    not reach into the owner's store — SMP passes references."""
    def body():
        me = repro.myrank()
        m = DistHashMap()
        if me == 0:
            v = [1, 2]
            m.put("k", v)
            v.append(3)  # must not be visible to anyone
        repro.barrier()
        got = m.get("k")
        assert got == [1, 2]
        got.append(99)  # must not corrupt the store or the cache
        assert m.get("k") == [1, 2] or got is not m.get("k")
        repro.barrier()
        m.invalidate_cache()
        assert m.get("k") == [1, 2]
        return True

    assert all(run_spmd(body, ranks=4))


def test_multi_get_multi_put_alignment():
    def body():
        me = repro.myrank()
        m = DistHashMap()
        if me == 0:
            m.multi_put([(f"k{i}", i * i) for i in range(64)])
        repro.barrier()
        m.refresh()
        keys = [f"k{i}" for i in range(64)] + ["missing", "k0"]
        vals = m.multi_get(keys, default=-1)
        assert vals == [i * i for i in range(64)] + [-1, 0]
        with pytest.raises(KeyError):
            m.multi_get(["k1", "nope"])
        assert m.multi_get([]) == []
        return True

    assert all(run_spmd(body, ranks=4))


def test_multi_get_issues_one_am_per_owner():
    """The batching contract: 1k keys at 4 ranks -> <= 3 request AMs."""
    def body():
        me = repro.myrank()
        m = DistHashMap(cache=False)
        keys = [f"key:{i}" for i in range(1000)]
        if me == 0:
            m.multi_put({k: i for i, k in enumerate(keys)})
            ctx = repro.current_world().ranks[0]
            before = ctx.stats.snapshot()["ams_sent"]
            vals = m.multi_get(keys)
            ams = ctx.stats.snapshot()["ams_sent"] - before
            assert vals == list(range(1000))
            assert ams <= repro.ranks() - 1, ams
            s = ctx.stats.snapshot()
            assert s["kv_multi_ops"] <= 2 * (repro.ranks() - 1)
            assert s["kv_batched_keys"] >= 1000
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_update_named_ops_and_callable():
    def body():
        me = repro.myrank()
        m = DistHashMap()
        m.update("sum", "add", 1, default=0)
        m.update("peak", "max", me, default=-1)
        repro.barrier()
        m.refresh()
        assert m.get("sum") == repro.ranks()
        assert m.get("peak") == repro.ranks() - 1
        if me == 0:
            with pytest.raises(KeyError):
                m.update("absent", "add", 1)  # no default -> KeyError
            with pytest.raises(PgasError):
                m.update("sum", "no-such-op", 1)
            assert m.update("lst", _snoc, 7, default=[]) == [7]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def _snoc(old, x):
    return old + [x]


def test_cache_hits_and_epoch_invalidation():
    def body():
        me = repro.myrank()
        m = DistHashMap(cache=True)
        owner_probe = "probe"
        if me == 0:
            m.put(owner_probe, 1)
        repro.barrier()
        readers = [r for r in range(repro.ranks())
                   if r != shard_of(owner_probe, repro.ranks())]
        if me == readers[0]:
            assert m.get(owner_probe) == 1      # miss, fills cache
            assert m.get(owner_probe) == 1      # hit
            assert m.cache_hits >= 1
            # Owner-side mutation bumps the epoch; the next op that
            # contacts the owner observes it and drops the stale entry.
            m.update(owner_probe, "add", 10)    # via owner: epoch moves
            assert m.get(owner_probe) == 11
        repro.barrier()
        # refresh() is the explicit fence: after it, everyone sees 11.
        m.refresh()
        assert m.get(owner_probe) == 11
        repro.barrier()
        nc = DistHashMap(cache=False)
        nc.put(("x", me), me)
        repro.barrier()
        assert nc.cache_hit_rate == 0.0
        return True

    assert all(run_spmd(body, ranks=4))


def test_two_maps_are_isolated():
    """Collectively constructed maps get distinct ids and never see
    each other's keys (the ctor rendezvous guard underwrites this)."""
    def body():
        me = repro.myrank()
        a = DistHashMap()
        b = DistHashMap()
        assert a.map_id != b.map_id
        a.put(("k", me), "a")
        repro.barrier()
        assert b.get(("k", me), default=None) is None
        assert b.size() == 0
        assert a.size() == repro.ranks()
        return True

    assert all(run_spmd(body, ranks=3))


def test_kv_telemetry_histograms_and_flight():
    def body():
        me = repro.myrank()
        m = DistHashMap()
        m.put(("k", me), me)
        repro.barrier()
        m.multi_get([("k", r) for r in range(repro.ranks())])
        m.get(("k", (me + 1) % repro.ranks()))
        repro.barrier()
        tel = repro.current_world().ranks[me].telemetry
        flight_n = len(tel.flight)
        merged = set()
        if me == 0:
            merged = set(
                repro.current_world().telemetry.merged_histograms()
            )
        repro.barrier()
        return merged, flight_n

    res = run_spmd(body, ranks=4, telemetry="full")
    names = res[0][0]
    assert {"kv_put", "kv_get", "kv_multi"} <= names
    assert any(flight_n > 0 for _names, flight_n in res)


def test_contains_and_local_introspection():
    def body():
        me = repro.myrank()
        m = DistHashMap()
        m.put(("mine", me), me)
        repro.barrier()
        assert ("mine", 0) in m
        assert ("nope",) not in m
        total = collectives.allreduce(m.local_size())
        assert total == repro.ranks()
        assert all(k in m for k in m.local_keys())
        return True

    assert all(run_spmd(body, ranks=3))
