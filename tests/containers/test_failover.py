"""Replicated DistHashMap under rank death: promotion, exactly-once,
zero acked-write loss, live rebalancing.

Every test runs with ``survive_rank_death=True`` over
``ReliableConduit(ChaosConduit)`` with **zero** random fault rates and a
fixed seed: the only injected fault is the deterministic
``kill_rank`` partition, so failures replay exactly.  The victim
partitions itself and parks (a zombie, not an exit), which forces the
survivors through the real detection path — heartbeat silence ->
RankDead after ``peer_timeout`` — rather than the in-process dead-flag
shortcut.  Post-kill rendezvous uses shared-memory flags, never
collectives: a tree barrier would hang on the dead member.
"""

from __future__ import annotations

import pytest

import repro
from repro.containers import DistHashMap, KvOwnerDead
from repro.containers.hashmap import shard_of
from repro.gasnet import ChaosConduit
from repro.gasnet.am import handler_registry


RELIABILITY = {"seed": 0, "peer_timeout": 0.3, "heartbeat_period": 0.01,
               "op_deadline": 3.0}


def _key_on_shard(sid: int, nshards: int, prefix: str = "k") -> str:
    return next(f"{prefix}{i}" for i in range(10_000)
                if shard_of(f"{prefix}{i}", nshards) == sid)


def _park_victim(ctx, conduit, flags, done, victim, n):
    """Victim-side kill: partition, signal, wait out the survivors."""
    conduit.kill_rank(ctx.rank)
    flags["killed"] = True
    ctx.wait_until(
        lambda: all(done[r] for r in range(n) if r != victim),
        what="test: partitioned victim parks",
    )


def _sync_shared(ctx, ready, n):
    """Shared-memory rendezvous: no rank proceeds (in particular, no
    rank partitions itself) until every rank has *returned* from the
    preceding barrier — a freshly killed rank can still owe release
    forwarding to tree children that would otherwise strand them."""
    ready[ctx.rank] = True
    ctx.world.poke_all()
    ctx.wait_until(lambda: all(ready[r] for r in range(n)),
                   what="test: past-the-barrier rendezvous")


def test_replicated_roundtrip_and_roles():
    """No-failure baseline: each rank hosts its own primary plus its
    left neighbor's backup, and the map behaves like the unreplicated
    one."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        m = DistHashMap(replicas=1)
        roles = m.local_shards()
        assert roles[me] == "primary"
        assert roles[(me - 1) % n] == "backup"
        m.put(("k", me), me * 11)
        m.update(("c", me), "add", 1, default=0)
        repro.barrier()
        m.refresh()
        for r in range(n):
            assert m.get(("k", r)) == r * 11
            assert m.get(("c", r)) == 1
        assert m.size() == 2 * n
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=1)
    assert all(repro.spmd(body, ranks=4, conduit=conduit,
                          reliability=dict(RELIABILITY, seed=1),
                          timeout=30.0))


def test_kill_primary_promotes_backup_zero_acked_loss():
    """Acked writes survive the primary's death: the backup is promoted
    and every key written before the kill reads back."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}

    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=1)
        for i in range(30):
            m.put((me, i), me * 100 + i)
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            _park_victim(ctx, holder["conduit"], flags, done, victim, n)
            return None
        if me == 0:
            holder["conduit"].kill_rank(victim)
            flags["killed"] = True
        ctx.wait_until(lambda: flags["killed"], what="wait for kill")
        # every acked write — including the victim's — reads back
        for r in range(n):
            for i in range(30):
                assert m.get((r, i)) == r * 100 + i
        # the map keeps taking writes, including on the moved shard
        k = _key_on_shard(victim, n, prefix=f"post{me}-")
        m.put(k, me)
        assert m.get(k) == me
        stats = ctx.stats.snapshot()
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        return stats["kv_promotions"]

    conduit = ChaosConduit(seed=2)
    holder["conduit"] = conduit
    res = repro.spmd(body, ranks=4, conduit=conduit,
                     reliability=dict(RELIABILITY, seed=2),
                     survive_rank_death=True, timeout=30.0)
    promos = [r for r in res if r is not None]
    assert sum(promos) >= 1  # exactly one rank promoted the shard


def test_kill_primary_mid_multi_put():
    """multi_put spanning every shard retries the affected keys against
    the promoted backup; acked batches are never lost."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=1)
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            _park_victim(ctx, holder["conduit"], flags, done, victim, n)
            return None
        if me == 0:
            # partition the victim while batches are in flight:
            # every batch spans all shards including the victim's
            acked = {}
            for round_ in range(6):
                if round_ == 2:
                    holder["conduit"].kill_rank(victim)
                    flags["killed"] = True
                batch = {f"r{round_}:{me}:{i}": (round_, i)
                         for i in range(32)}
                m.multi_put(batch)   # returns only once acked
                acked.update(batch)
            m.refresh()
            got = m.multi_get(sorted(acked))
            assert got == [acked[k] for k in sorted(acked)]
        else:
            ctx.wait_until(lambda: flags["killed"], what="wait kill")
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        return True

    conduit = ChaosConduit(seed=3)
    holder["conduit"] = conduit
    res = repro.spmd(body, ranks=4, conduit=conduit,
                     reliability=dict(RELIABILITY, seed=3),
                     survive_rank_death=True, timeout=30.0)
    assert all(r for r in res if r is not None)


def test_update_exactly_once_across_failover():
    """Counter increments survive the failover exactly once: the total
    equals the number of acked update() calls even though some retried
    against the promoted backup."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=1)
        key = _key_on_shard(victim, n, prefix="ctr")
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            _park_victim(ctx, holder["conduit"], flags, done, victim, n)
            return None
        acked = 0
        for i in range(10):
            if me == 0 and i == 4:
                holder["conduit"].kill_rank(victim)
                flags["killed"] = True
            m.update(key, "add", 1, default=0)  # returns only once acked
            acked += 1
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        m.refresh()
        total = m.get(key)
        return acked, total

    conduit = ChaosConduit(seed=4)
    holder["conduit"] = conduit
    res = repro.spmd(body, ranks=4, conduit=conduit,
                     reliability=dict(RELIABILITY, seed=4),
                     survive_rank_death=True, timeout=30.0)
    alive = [r for r in res if r is not None]
    want = sum(acked for acked, _total in alive)
    for _acked, total in alive:
        assert total == want  # no lost and no double-applied increment


def test_kill_between_replication_log_and_ack():
    """The nastiest window: the backup applied the replication record
    but the primary died before acking the client.  The client's retry
    lands on the promoted backup, which replays the recorded result —
    applied exactly once."""
    victim = 1
    client = 3
    flags = {"killed": False, "armed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder = {}
    orig = handler_registry["kv_repl"]

    def killing_repl(ctx, am):
        # Partition the primary the instant its replication record
        # reaches the backup: the record applies below, but the ack —
        # and the primary's reply to the client — are blackholed.
        if flags["armed"] and am.src_rank == victim:
            flags["armed"] = False
            holder["conduit"].kill_rank(victim)
            flags["killed"] = True
        orig(ctx, am)

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=1)
        key = _key_on_shard(victim, n, prefix="gap")
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == client:
            flags["armed"] = True
            new = m.update(key, "add", 1, default=0)  # spans the kill
            assert new == 1
            assert m.get(key) == 1
        elif me == victim:
            ctx.wait_until(lambda: flags["killed"], what="wait own kill")
            _park_victim(ctx, holder["conduit"], flags, done, victim, n)
            return None
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        m.refresh()
        return m.get(key)

    conduit = ChaosConduit(seed=5)
    holder["conduit"] = conduit
    handler_registry["kv_repl"] = killing_repl
    try:
        res = repro.spmd(body, ranks=4, conduit=conduit,
                         reliability=dict(RELIABILITY, seed=5),
                         survive_rank_death=True, timeout=30.0)
    finally:
        handler_registry["kv_repl"] = orig
    assert not flags["armed"]  # the window actually fired
    alive = [r for r in res if r is not None]
    assert alive and all(v == 1 for v in alive)


def test_rebalance_migrates_data_and_update_records():
    """Live migration ships the store *and* the exactly-once update
    records: a duplicate of a pre-migration update replayed at the new
    primary returns the recorded result instead of re-applying."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=1)
        sid, target = 0, 2
        key = _key_on_shard(sid, n, prefix="mig")
        bulk = {f"{key}:{i}": i for i in range(20)
                if shard_of(f"{key}:{i}", n) == sid}
        if me == 0:
            m.multi_put(bulk)
            # a raw update with a pinned op id, so it can be replayed
            fut = ctx.send_am(0, "kv_update",
                              args=(m.map_id, sid, 777_001),
                              payload=(key, "add", (5,), 0, True),
                              expect_reply=True)
            (_k, _sid, _ep, *_), new = fut.get()
            assert new == 5
        repro.barrier()
        if me == 3:
            m.rebalance(sid, target)
        repro.barrier()
        m.refresh()
        assert m.local_shards().get(sid) == (
            "primary" if me == target else m.local_shards().get(sid))
        if me == target:
            assert m.local_shards()[sid] == "primary"
        # data survived the move
        for k, v in bulk.items():
            assert m.get(k) == v
        repro.barrier()
        if me == 0:
            # duplicate of the pre-migration update, sent to the NEW
            # primary: must be deduped via the migrated record
            fut = ctx.send_am(target, "kv_update",
                              args=(m.map_id, sid, 777_001),
                              payload=(key, "add", (5,), 0, True),
                              expect_reply=True)
            (_k, _sid, _ep, *_), new = fut.get()
            assert new == 5          # the recorded result, not 10
            assert m.get(key) == 5   # not double-applied
        repro.barrier()
        return True

    conduit = ChaosConduit(seed=6)
    assert all(repro.spmd(body, ranks=4, conduit=conduit,
                          reliability=dict(RELIABILITY, seed=6),
                          survive_rank_death=True, timeout=30.0))


def test_unreplicated_multi_ops_fail_fast_with_diagnostic():
    """Without replication a dead owner is not survivable — but the
    failure must be a diagnostic naming the dead rank and the affected
    keys, not a hang or a bare timeout."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=0)
        mine = [_key_on_shard(s, n, prefix=f"ff{s}-") for s in range(n)]
        if me == 0:
            m.multi_put({k: 1 for k in mine})
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            _park_victim(ctx, holder["conduit"], flags, done, victim, n)
            return None
        if me == 0:
            holder["conduit"].kill_rank(victim)
            flags["killed"] = True
            with pytest.raises(KvOwnerDead) as ei:
                m.multi_get(mine)
            assert ei.value.owner == victim
            victim_keys = [k for k in mine
                           if shard_of(k, n) == victim]
            assert set(ei.value.keys) >= set(victim_keys)
            msg = str(ei.value)
            assert str(victim) in msg and victim_keys[0] in msg
            with pytest.raises(KvOwnerDead):
                m.multi_put({k: 2 for k in victim_keys})
            with pytest.raises(KvOwnerDead):
                m.put(victim_keys[0], 3)
        else:
            ctx.wait_until(lambda: flags["killed"], what="wait kill")
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        return True

    conduit = ChaosConduit(seed=8)
    holder["conduit"] = conduit
    res = repro.spmd(body, ranks=4, conduit=conduit,
                     reliability=dict(RELIABILITY, seed=8),
                     survive_rank_death=True, timeout=30.0)
    assert all(r for r in res if r is not None)


def test_read_replicas_serve_reads_and_survive():
    """``read_replicas=True`` round-robins reads across primary and
    backup, serves locally-hosted backup copies without AMs, and stays
    correct across a failover."""
    victim = 1
    flags = {"killed": False}
    done = {r: False for r in range(4)}
    ready = {r: False for r in range(4)}
    holder = {}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        m = DistHashMap(replicas=1, read_replicas=True, cache=False)
        m.put(("rr", me), me)
        repro.barrier()
        _sync_shared(ctx, ready, n)
        if me == victim:
            _park_victim(ctx, holder["conduit"], flags, done, victim, n)
            return None
        for _ in range(4):          # both parities of the round-robin
            for r in range(n):
                assert m.get(("rr", r)) == r
        if me == 0:
            holder["conduit"].kill_rank(victim)
            flags["killed"] = True
        ctx.wait_until(lambda: flags["killed"], what="wait kill")
        for _ in range(4):
            for r in range(n):
                assert m.get(("rr", r)) == r
        stats = ctx.stats.snapshot()
        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(done[r] for r in range(n)
                                   if r != victim), what="rendezvous")
        return stats["kv_replica_reads"]

    conduit = ChaosConduit(seed=9)
    holder["conduit"] = conduit
    res = repro.spmd(body, ranks=4, conduit=conduit,
                     reliability=dict(RELIABILITY, seed=9),
                     survive_rank_death=True, timeout=30.0)
    assert sum(r for r in res if r is not None) > 0
