"""Fig. 7 — Embree strong scaling (Edison model).

Measured: the distributed renderer (4 ranks) and the tile kernel.
Projected: the 24..6144-core speedup series.
"""

from benchmarks.conftest import attach_series
from repro.bench import raytrace
from repro.bench.raytrace import Scene, render_tile
from repro.sim import perfmodel as pm


def test_distributed_render(benchmark):
    out = {}

    def run():
        out["r"] = raytrace.run(ranks=4, image=48, tile=8, spp=2,
                                verify=False)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["tiles_on_rank0"] = out["r"].tiles_rendered
    attach_series(benchmark, "fig7_model", pm.fig7_embree())


def test_tile_kernel(benchmark):
    """Single-tile render cost (feeds ray_rate calibration)."""
    scene = Scene()

    def kernel():
        render_tile(scene, 64, 16, 1, 1, spp=2)

    benchmark(kernel)
    benchmark.extra_info["rays_per_call"] = 16 * 16 * 2
