"""Multidimensional array library costs: view creation, element access,
pack/unpack (the machinery behind ghost copies), and the foreach-vs-
vectorized kernel gap the examples document.
"""

import numpy as np
import pytest

import repro
from repro.arrays import Point, RectDomain, foreach, ndarray


def _in_world(benchmark, body, rounds=3):
    def run():
        repro.spmd(body, ranks=1)

    benchmark.pedantic(run, rounds=rounds, iterations=1)


def test_view_creation_cost(benchmark):
    def body():
        A = ndarray(np.float64, RectDomain((0, 0, 0), (32, 32, 32)))
        inner = A.domain.shrink(1)
        for _ in range(500):
            A.constrict(inner).translate(Point(1, 1, 1)).transpose()

    _in_world(benchmark, body)


def test_element_access_point_indexing(benchmark):
    def body():
        A = ndarray(np.float64, RectDomain((0, 0), (64, 64)))
        for (i, j) in foreach(RectDomain((0, 0), (32, 32))):
            A[i, j] = 1.0

    _in_world(benchmark, body)


def test_local_view_bulk_assignment(benchmark):
    """The vectorized path the examples recommend — contrast with
    point indexing above."""
    def body():
        A = ndarray(np.float64, RectDomain((0, 0), (64, 64)))
        for _ in range(500):
            A.local_view()[:32, :32] = 1.0

    _in_world(benchmark, body)


@pytest.mark.parametrize("shape", ["face", "edge"])
def test_ghost_pack_unpack(benchmark, shape):
    """Packing a boundary region (the AM payload of a ghost copy)."""
    def body():
        A = ndarray(np.float64, RectDomain((0, 0, 0), (64, 64, 64)))
        dom = A.domain
        region = (dom.border(0, 1) if shape == "face"
                  else dom.border(0, 1).border(1, 1))
        view = A.constrict(region)
        for _ in range(100):
            block = view.to_numpy()
            view.from_numpy(block)

    _in_world(benchmark, body)


def test_remote_copy_roundtrip(benchmark):
    def run():
        def body():
            me = repro.myrank()
            d = repro.Directory()
            A = ndarray(np.float64, RectDomain((0, 0), (64, 64)))
            d.publish_and_sync(A)
            if me == 0:
                B = d.lookup(1)
                local = ndarray(np.float64, RectDomain((0, 0), (64, 64)))
                for _ in range(20):
                    local.copy(B)
            repro.barrier()

        repro.spmd(body, ranks=2)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_domain_intersection_cost(benchmark):
    a = RectDomain((0, 0, 0), (100, 100, 100), (2, 3, 1))
    b = RectDomain((3, 1, 50), (80, 120, 160), (3, 2, 5))

    def kernel():
        for _ in range(1000):
            a.intersect(b)

    benchmark(kernel)
