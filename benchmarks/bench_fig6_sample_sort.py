"""Fig. 6 — Sample Sort weak scaling (Edison model).

Measured: the full distributed sort (4 ranks) for both variants.
Projected: the 1..12288-core TB/min series, UPC vs UPC++.
"""

import pytest

from benchmarks.conftest import attach_series
from repro.bench import sample_sort
from repro.sim import perfmodel as pm


@pytest.mark.parametrize("variant", ["upcxx", "upc"])
def test_sample_sort(benchmark, variant):
    out = {}

    def run():
        out["r"] = sample_sort.run(
            ranks=4, keys_per_rank=16384, variant=variant, verify=False,
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["tb_per_min_smp"] = out["r"].tb_per_min
    attach_series(benchmark, "fig6_model", pm.fig6_sample_sort())
    attach_series(benchmark, "fig6_paper_endpoints", pm.PAPER_FIG6)


def test_splitter_phase(benchmark):
    """Sampling via fine-grained global reads (the paper's excerpt)."""
    import numpy as np

    import repro
    from repro.bench.sample_sort import _select_splitters

    def run():
        def body():
            keys = repro.SharedArray(np.uint64, size=4096, block=1024)
            keys.local_view()[:1024] = np.random.default_rng(
                repro.myrank()
            ).integers(0, 1 << 63, 1024, dtype=np.uint64)
            repro.barrier()
            s = _select_splitters(keys, oversample=32, seed=1)
            assert len(s) == repro.ranks() - 1
            repro.barrier()

        repro.spmd(body, ranks=4)

    benchmark.pedantic(run, rounds=3, iterations=1)
