"""Fig. 4 — Random Access latency per update (BG/Q model).

Measured: per-update latency of the real loop, local (1 rank) vs
remote-heavy (4 ranks) — the same local/remote contrast that drives the
figure's shape.  Projected: the full 1..8192-core series for both
programming models.
"""

import numpy as np
import pytest

import repro
from benchmarks.conftest import attach_series
from repro.sim import perfmodel as pm


def _measure_updates(ranks: int, updates: int) -> float:
    """Seconds per update of an atomic-xor loop on `ranks` ranks."""
    import time

    def body():
        table = repro.SharedArray(np.uint64, size=1024, block=1)
        repro.barrier()
        idx = np.random.default_rng(repro.myrank()).integers(
            0, 1024, size=updates
        )
        t0 = time.perf_counter()
        for i in idx:
            table.atomic(int(i), "xor", np.uint64(i))
        repro.barrier()
        return (time.perf_counter() - t0) / updates

    return max(repro.spmd(body, ranks=ranks))


@pytest.mark.parametrize("ranks", [1, 4])
def test_update_latency(benchmark, ranks):
    out = {}

    def run():
        out["t"] = _measure_updates(ranks, updates=400)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["usec_per_update_smp"] = out["t"] * 1e6
    attach_series(benchmark, "fig4_model", pm.fig4_random_access())
