"""Core runtime operation costs — the software overheads behind Fig. 3.

These microbenchmarks are what :mod:`repro.sim.calibrate` consumes: the
local/remote shared-access split, async round trips, bulk copy
bandwidth, barriers and collectives.
"""

import numpy as np
import pytest

import repro


def _world_bench(benchmark, body, ranks=2, rounds=5, setup=None):
    """Time `body` (run on rank 0 inside an SPMD world).

    ``setup`` (optional) runs collectively on every rank first and its
    return value is passed to ``body``.
    """
    def run():
        def spmd_body():
            state = setup() if setup is not None else None
            repro.barrier()
            if repro.myrank() == 0:
                if state is None:
                    body()
                else:
                    body(state)
            repro.barrier()

        repro.spmd(spmd_body, ranks=ranks)

    benchmark.pedantic(run, rounds=rounds, iterations=1)


def test_local_shared_array_access(benchmark):
    """Fig. 3 'local access' branch: owner-side element reads."""
    def setup():
        return repro.SharedArray(np.int64, size=64, block=32)

    def body(sa):
        for _ in range(2000):
            sa[0]  # element 0 is rank 0's

    _world_bench(benchmark, body, setup=setup)


def test_remote_shared_array_access(benchmark):
    """Fig. 3 'remote access' branch: one-sided gets from a peer."""
    def setup():
        return repro.SharedArray(np.int64, size=64, block=32)

    def body(sa):
        for _ in range(2000):
            sa[32]  # element 32 is rank 1's

    _world_bench(benchmark, body, setup=setup)


def test_async_round_trip(benchmark):
    def body():
        for _ in range(50):
            repro.async_(1)(int, 1).get()

    _world_bench(benchmark, body)


def test_bulk_copy_bandwidth(benchmark):
    nbytes = 1 << 20

    def body():
        src = repro.allocate(0, nbytes, np.uint8)
        dst = repro.allocate(1, nbytes, np.uint8)
        for _ in range(10):
            repro.copy(src, dst, nbytes)

    _world_bench(benchmark, body)
    benchmark.extra_info["bytes_per_round"] = nbytes * 10


def test_barrier_cost(benchmark):
    def run():
        def body():
            for _ in range(100):
                repro.barrier()

        repro.spmd(body, ranks=4)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_allreduce_cost(benchmark):
    def run():
        def body():
            v = np.arange(256.0)
            for _ in range(50):
                repro.collectives.allreduce(v)

        repro.spmd(body, ranks=4)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_remote_allocation_cost(benchmark):
    """The AM round trip of allocate-on-remote (paper §III-C)."""
    def body():
        ptrs = [repro.allocate(1, 64, np.uint8) for _ in range(100)]
        for p in ptrs:
            repro.deallocate(p)

    _world_bench(benchmark, body)


# -- batched RMA engine: batched vs per-element, with coalescing ratio ---

_BATCH_N = 2048


def _batch_bench(benchmark, body, size=4096, block=1):
    """Run ``body(sa, idx)`` on rank 0 over a 4-rank world and attach the
    conduit-op and coalescing counters observed during the run."""
    observed = {}

    def run():
        def spmd_body():
            sa = repro.SharedArray(np.int64, size=size, block=block)
            repro.barrier()
            if repro.myrank() == 0:
                rng = np.random.default_rng(7)
                idx = rng.integers(0, size, size=_BATCH_N, dtype=np.int64)
                stats = repro.current_world().ranks[0].stats
                s0 = stats.snapshot()
                body(sa, idx)
                s1 = stats.snapshot()
                observed["conduit_ops"] = (
                    (s1["puts"] + s1["gets"] + s1["atomics"]
                     + s1["puts_indexed"] + s1["gets_indexed"]
                     + s1["atomic_batches"])
                    - (s0["puts"] + s0["gets"] + s0["atomics"]
                       + s0["puts_indexed"] + s0["gets_indexed"]
                       + s0["atomic_batches"])
                )
                observed["coalescing_ratio"] = round(
                    stats.coalescing_ratio, 2
                )
            repro.barrier()

        repro.spmd(spmd_body, ranks=4)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["elements"] = _BATCH_N
    benchmark.extra_info.update(observed)


def test_gather_batched(benchmark):
    """2048 random reads via gather: one indexed get per owning rank."""
    _batch_bench(benchmark, lambda sa, idx: sa.gather(idx))


def test_gather_per_element(benchmark):
    """The same 2048 reads element-at-a-time (the Fig. 3 scalar path)."""
    def body(sa, idx):
        for i in idx:
            sa[int(i)]

    _batch_bench(benchmark, body)


def test_scatter_batched(benchmark):
    _batch_bench(benchmark, lambda sa, idx: sa.scatter(idx, 1))


def test_scatter_per_element(benchmark):
    def body(sa, idx):
        for i in idx:
            sa[int(i)] = 1

    _batch_bench(benchmark, body)


def test_atomic_batch(benchmark):
    """2048 xor updates in one batch per owning rank (GUPS inner loop)."""
    _batch_bench(
        benchmark, lambda sa, idx: sa.atomic_batch(idx, "xor", 0x5A5A)
    )


def test_atomic_per_element(benchmark):
    def body(sa, idx):
        for i in idx:
            sa.atomic(int(i), "xor", 0x5A5A)

    _batch_bench(benchmark, body)


def test_world_spinup(benchmark):
    """SPMD launch + teardown (fixed cost behind every other number)."""
    def run():
        repro.spmd(lambda: repro.barrier(), ranks=4)

    benchmark.pedantic(run, rounds=10, iterations=1)
