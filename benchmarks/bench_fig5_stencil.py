"""Fig. 5 — Stencil weak scaling (Edison model).

Measured: full distributed Jacobi iterations (8 ranks, vectorized
kernel) and the ghost-exchange phase alone.  Projected: the
24..6144-core GFLOPS series for Titanium and UPC++.
"""

import numpy as np
import pytest

import repro
from benchmarks.conftest import attach_series
from repro.arrays import DistNdArray, RectDomain
from repro.bench import stencil
from repro.sim import perfmodel as pm


def test_stencil_iterations(benchmark):
    out = {}

    def run():
        out["r"] = stencil.run(ranks=8, box=16, iters=2, verify=False)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["gflops_smp"] = out["r"].gflops
    attach_series(benchmark, "fig5_model", pm.fig5_stencil())
    attach_series(benchmark, "fig5_paper_endpoints", pm.PAPER_FIG5)


def test_ghost_exchange_phase(benchmark):
    """The communication phase alone (6 one-sided face copies/rank)."""
    def run():
        def body():
            D = DistNdArray(np.float64,
                            RectDomain((0, 0, 0), (32, 32, 32)), ghost=1)
            D.interior_view()[:] = float(repro.myrank())
            for _ in range(3):
                D.ghost_exchange(faces_only=True)
            repro.barrier()

        repro.spmd(body, ranks=8)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_local_kernel_only(benchmark):
    """The 8-flop/point compute phase (NumPy views, no communication).
    Feeds the calibration of stencil_gflops_per_core."""
    a = np.random.default_rng(0).random((66, 66, 66))
    b = np.zeros_like(a)

    def kernel():
        stencil._kernel_vectorized(a, b)

    benchmark(kernel)
    flops = 64 ** 3 * stencil.FLOPS_PER_POINT
    benchmark.extra_info["flops_per_call"] = flops
