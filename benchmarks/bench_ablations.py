"""Ablations of the design decisions DESIGN.md §5 calls out.

Each pair isolates one choice the paper (or this reproduction) made:

* **unstrided vs strided array access** (paper §III-E's template
  specialization): packing a block from a contiguous view vs a strided
  one;
* **blocking copy vs async_copy+fence** (paper §III-D / §V-E): many
  small transfers with per-op completion vs a single fence — measured
  on the real runtime *and* projected via the model's LULESH exchange;
* **serialized vs concurrent thread mode** (paper §IV): async service
  latency when the target computes without polling;
* **event-driven vs finish-based synchronization** (paper §III-G): the
  bookkeeping cost of each completion mechanism.
"""

import numpy as np
import pytest

import repro
from repro.arrays import RectDomain, ndarray
from repro.sim.des import DesEngine
from repro.sim.patterns import halo3d_pattern


# -- unstrided specialization ------------------------------------------------

@pytest.mark.parametrize("layout", ["unstrided", "strided"])
def test_pack_block_by_layout(benchmark, layout):
    def run():
        def body():
            base = ndarray(np.float64, RectDomain((0, 0), (128, 128)))
            if layout == "unstrided":
                view = base.constrict(RectDomain((0, 0), (128, 128)))
                assert view.unstrided
            else:
                view = base.constrict(
                    RectDomain((0, 0), (128, 128), (2, 2))
                )
                assert not view.unstrided
            for _ in range(20):
                view.to_numpy()

        repro.spmd(body, ranks=1)

    benchmark.pedantic(run, rounds=3, iterations=1)


# -- blocking vs non-blocking copies -------------------------------------------

@pytest.mark.parametrize("mode", ["blocking", "async"])
def test_many_copies_by_mode(benchmark, mode):
    def run():
        def body():
            me = repro.myrank()
            if me == 0:
                srcs = [repro.allocate(0, 4096, np.uint8)
                        for _ in range(32)]
                dsts = [repro.allocate(1, 4096, np.uint8)
                        for _ in range(32)]
                for _ in range(5):
                    if mode == "blocking":
                        for s, d in zip(srcs, dsts):
                            repro.copy(s, d, 4096)
                    else:
                        for s, d in zip(srcs, dsts):
                            repro.async_copy(s, d, 4096)
                        repro.async_copy_fence()
            repro.barrier()

        repro.spmd(body, ranks=2)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_async_copy_advantage_under_model(benchmark):
    """Where the real advantage lives (the SMP wire is a memcpy): the
    machine model's halo exchange, one-sided vs two-sided."""
    from repro.sim.machine import EDISON

    progs_one = halo3d_pattern(64, 2, 16 * 16 * 8, 1e-4, one_sided=True)
    progs_two = halo3d_pattern(64, 2, 16 * 16 * 8, 1e-4, one_sided=False)

    def run():
        t_one = DesEngine(EDISON, "upcxx", 64).run(
            [list(p) for p in progs_one])["makespan"]
        t_two = DesEngine(EDISON, "mpi", 64).run(
            [list(p) for p in progs_two])["makespan"]
        assert t_one < t_two

    benchmark.pedantic(run, rounds=3, iterations=1)


# -- thread-support modes -----------------------------------------------------

@pytest.mark.parametrize("mode", ["serialized", "concurrent"])
def test_async_throughput_by_thread_mode(benchmark, mode):
    def run():
        def body():
            me = repro.myrank()
            if me == 0:
                with repro.finish():
                    for i in range(100):
                        repro.async_(1)(int, i)
            repro.barrier()

        repro.spmd(body, ranks=2, thread_mode=mode)

    benchmark.pedantic(run, rounds=3, iterations=1)


# -- event vs finish synchronization -----------------------------------------

@pytest.mark.parametrize("style", ["finish", "events"])
def test_task_sync_style(benchmark, style):
    def run():
        def body():
            me = repro.myrank()
            n = repro.ranks()
            if me == 0:
                if style == "finish":
                    with repro.finish():
                        for i in range(60):
                            repro.async_(1 + i % (n - 1))(int, i)
                else:
                    e = repro.Event()
                    for i in range(60):
                        repro.async_(1 + i % (n - 1), signal=e)(int, i)
                    e.wait()
            repro.barrier()

        repro.spmd(body, ranks=4)

    benchmark.pedantic(run, rounds=3, iterations=1)
