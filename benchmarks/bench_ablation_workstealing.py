"""Ablation: static cyclic tile distribution vs work-stealing queue
(the paper's §V-D design choice and its stated future work).

Under a *balanced* workload the static distribution wins (no stealing
overhead); under a *skewed* one the work queue recovers most of the
lost parallelism.  Both modes produce bit-identical images (tested in
tests/bench/test_raytrace.py); here we time them.
"""

import pytest

from repro.bench import raytrace


@pytest.mark.parametrize("mode", ["static", "stealing-balanced",
                                  "stealing-skewed"])
def test_render_distribution_mode(benchmark, mode):
    out = {}

    def run():
        if mode == "static":
            out["r"] = raytrace.run(ranks=4, image=48, tile=8, spp=1,
                                    verify=False)
        else:
            out["r"] = raytrace.run_dynamic(
                ranks=4, image=48, tile=8, spp=1, verify=False,
                skew=(mode == "stealing-skewed"),
            )

    benchmark.pedantic(run, rounds=3, iterations=1)
    if mode != "static":
        benchmark.extra_info["steals"] = sum(
            r["steals"] for r in out["r"]
        )
        benchmark.extra_info["rank0_share"] = (
            out["r"][0]["rendered"] / out["r"][0]["total_rendered"]
        )
