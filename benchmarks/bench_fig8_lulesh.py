"""Fig. 8 — LULESH weak scaling, MPI vs UPC++ (Edison model).

Measured: the hydro proxy in both communication modes (8 ranks) — the
real code-path contrast behind the figure.  Projected: the 64..32768
core FOM series with the ~10% one-sided advantage at scale.
"""

import pytest

from benchmarks.conftest import attach_series
from repro.bench import lulesh
from repro.sim import perfmodel as pm


@pytest.mark.parametrize("comm", ["one-sided", "two-sided"])
def test_lulesh_steps(benchmark, comm):
    out = {}

    def run():
        out["r"] = lulesh.run(ranks=8, box=6, steps=2, comm=comm,
                              verify=False)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["fom_zones_per_sec_smp"] = \
        out["r"].fom_zones_per_sec
    attach_series(benchmark, "fig8_model", pm.fig8_lulesh())
    benchmark.extra_info["paper_upcxx_over_mpi_at_32k"] = \
        pm.PAPER_FIG8_UPCXX_SPEEDUP_AT_32K


def test_physics_kernel_only(benchmark):
    """The Lax-Friedrichs + smoothing update (feeds zone_rate)."""
    import numpy as np

    from repro.bench.lulesh import lxf_step, max_wavespeed, sedov_init

    U = sedov_init((24, 24, 24), dx=1.0)
    pad = {k: np.pad(v, 1, mode="edge") for k, v in U.items()}

    def kernel():
        dt = 0.3 / max_wavespeed(pad)
        lxf_step(pad, dt, 1.0)

    benchmark(kernel)
    benchmark.extra_info["zones_per_call"] = 24 ** 3
