"""Table IV — Random Access GUPS.

Measured: the real update loop on the SMP conduit (4 ranks).
Projected: the Vesta model's GUPS at the paper's 16/128/1024/8192
threads, attached as extra_info.
"""

import pytest

from benchmarks.conftest import attach_series
from repro.bench import gups
from repro.sim import perfmodel as pm


@pytest.mark.parametrize("variant", ["upcxx", "upcxx-element", "upc"])
def test_gups_update_loop(benchmark, variant):
    result = {}

    def run():
        result["r"] = gups.run(
            ranks=4, log2_table_size=12, updates_per_rank=512,
            variant=variant, verify=False,
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
    attach_series(benchmark, "table4_model", pm.table4_gups())
    attach_series(benchmark, "table4_paper", pm.PAPER_TABLE4)
    benchmark.extra_info["measured_gups_smp"] = result["r"].gups
    benchmark.extra_info["remote_fraction"] = result["r"].remote_fraction
    # Coalescing: conduit ops issued by rank 0's update loop (the
    # batched variant should be far below the per-element baselines).
    benchmark.extra_info["conduit_ops_rank0"] = result["r"].conduit_ops


def test_gups_verification_pass(benchmark):
    """The HPCC self-inverse check, timed (2x update work)."""
    def run():
        r = gups.run(ranks=4, log2_table_size=10, updates_per_rank=128,
                     variant="upcxx", verify=True)
        assert r.verified

    benchmark.pedantic(run, rounds=3, iterations=1)
