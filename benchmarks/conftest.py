"""Shared helpers for the benchmark harness.

Every ``bench_figN_*`` module does two things:

1. measures the *real* benchmark on the SMP conduit at small rank
   counts with pytest-benchmark (these numbers characterize this
   library's software paths, not a supercomputer);
2. attaches the machine-model projection of the paper's figure to
   ``benchmark.extra_info`` so the report carries the reproduced series
   next to the measured sample.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations


def attach_series(benchmark, name: str, series: dict) -> None:
    """Record a modelled paper series in the benchmark report."""
    compact = {}
    for key, val in series.items():
        if isinstance(val, list) and val and isinstance(val[0], float):
            compact[key] = [round(v, 6) for v in val]
        else:
            compact[key] = val
    benchmark.extra_info[name] = compact
